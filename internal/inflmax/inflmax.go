// Package inflmax solves the influence-maximization problem of Kempe,
// Kleinberg & Tardos (the paper's reference [11], whose propagation
// model this repository simulates) on top of the *inferred* embeddings:
// choose k seed nodes maximizing the expected number of nodes reached
// within a time horizon. It is the natural operational application of
// the fitted model — "whom should we hand the story to?" — and needs no
// network topology, only the influence/selectivity vectors.
//
// Under the embedding model, seed u reaches v within horizon T directly
// with probability p(u,v) = 1 - exp(-A[u]·B[v]·T). The expected direct
// coverage of a seed set S, with the standard independence
// approximation, is
//
//	f(S) = sum_v [ 1 - prod_{u in S} (1 - p(u,v)) ]
//
// plus the seeds themselves (a seeded node is active by definition, the
// standard IC convention). The objective is monotone and submodular, so
// lazy greedy selection (CELF) carries the classic (1 - 1/e) guarantee
// relative to the best seed set under the same objective.
//
// The O(n·K) gain evaluations dominate the cost, so GreedyOpt runs them
// in parallel: the initial marginal-gain pass is sharded across workers,
// and stale candidates popped off the CELF queue in the same round are
// re-evaluated as a batch. Both paths are deterministic — every gain is
// computed by exactly one worker with a fixed loop order, and queue ties
// break on node id — so the selected seed set is identical for any
// worker count.
package inflmax

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"

	"viralcast/internal/embed"
	"viralcast/internal/faultinject"
	"viralcast/internal/pool"
	"viralcast/internal/vecmath"
)

// Result describes one selected seed.
type Result struct {
	Node int
	// Gain is the marginal expected coverage this seed added.
	Gain float64
	// Total is the expected coverage of the seed set up to this seed.
	Total float64
}

// Precomp holds per-generation aggregates of a model that the greedy
// selection and coverage evaluation exploit to skip dead rows. Build it
// once per model generation with Precompute (core.System does this and
// threads it through automatically).
type Precomp struct {
	// ASum[u] is node u's total influence mass (the sum of its A row);
	// under the model's non-negativity invariant, 0 means u cannot
	// infect anyone and its whole O(n·K) gain scan collapses to the
	// self term.
	ASum []float64
	// BSum[v] is node v's total selectivity mass; 0 means v cannot be
	// reached and is skipped as a target.
	BSum []float64
}

// Precompute builds the skip aggregates for m. The zero-sum-means-dead
// shortcut is only sound when every entry is non-negative (the model
// invariant enforced by embed.Model.Validate and the projected gradient
// fit); a model violating it yields nil, which disables the shortcut.
func Precompute(m *embed.Model) *Precomp {
	if m == nil {
		return nil
	}
	if !vecmath.AllNonneg(m.A.Data) || !vecmath.AllNonneg(m.B.Data) {
		return nil
	}
	n := m.N()
	p := &Precomp{ASum: make([]float64, n), BSum: make([]float64, n)}
	for u := 0; u < n; u++ {
		p.ASum[u] = vecmath.Sum(m.A.Row(u))
		p.BSum[u] = vecmath.Sum(m.B.Row(u))
	}
	return p
}

// matches reports whether p was built for a model of n nodes; a stale or
// foreign Precomp is ignored rather than trusted.
func (p *Precomp) matches(n int) bool {
	return p != nil && len(p.ASum) == n && len(p.BSum) == n
}

// Options tunes GreedyOpt and CoverageOpt beyond the required inputs.
// The zero value is a sensible default.
type Options struct {
	// Workers bounds how many gain evaluations run concurrently;
	// <= 0 uses runtime.GOMAXPROCS(0). The result is identical for any
	// value.
	Workers int
	// Pre supplies precomputed model aggregates (see Precompute); nil
	// (or a Precomp for a different model size) disables the dead-row
	// shortcuts but changes no result.
	Pre *Precomp
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// celfItem is a lazily evaluated candidate in the CELF queue.
type celfItem struct {
	node    int
	gain    float64
	round   int // the selection round the gain was computed in
	heapIdx int
}

// celfQueue orders candidates by gain, breaking ties on node id so the
// pop order — and therefore the selected seed set — is deterministic
// regardless of how a parallel batch refresh reordered the refreshes.
type celfQueue []*celfItem

func (q celfQueue) Len() int { return len(q) }
func (q celfQueue) Less(i, j int) bool {
	if q[i].gain != q[j].gain {
		return q[i].gain > q[j].gain
	}
	return q[i].node < q[j].node
}
func (q celfQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i]; q[i].heapIdx = i; q[j].heapIdx = j }
func (q *celfQueue) Push(x any)   { it := x.(*celfItem); it.heapIdx = len(*q); *q = append(*q, it) }
func (q *celfQueue) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Greedy selects up to k seeds with lazy greedy (CELF) under the
// direct-coverage objective at the given horizon. Candidates may
// restrict the eligible seed nodes (nil means all nodes).
func Greedy(m *embed.Model, horizon float64, k int, candidates []int) ([]Result, error) {
	return GreedyCtx(context.Background(), m, horizon, k, candidates)
}

// gainCheckStride bounds how much work runs between cancellation
// checks inside the greedy loops: one check per this many O(n·K) gain
// evaluations keeps the overhead unmeasurable while a canceled caller
// (request deadline hit, client gone) stops within a few milliseconds
// of real compute instead of finishing an O(n²·K) selection.
const gainCheckStride = 64

// GreedyCtx is Greedy with cancellation: the selection checks ctx
// between gain evaluations and returns ctx.Err() as soon as it is
// canceled, so a serving deadline bounds the CPU a request can burn.
func GreedyCtx(ctx context.Context, m *embed.Model, horizon float64, k int, candidates []int) ([]Result, error) {
	return GreedyOpt(ctx, m, horizon, k, candidates, Options{})
}

// gainEval computes marginal gains against the current notReached state.
// It is safe for concurrent calls: the state is read-only during an
// evaluation round.
type gainEval struct {
	m          *embed.Model
	horizon    float64
	n          int
	notReached []float64
	asum       []float64 // nil disables the dead-source shortcut
	bsum       []float64 // nil disables the dead-target shortcut
}

// gain evaluates seeding u against the frozen notReached state: u's own
// residual mass converts to coverage, plus direct-reach mass over every
// still-unreached target.
func (e *gainEval) gain(u int) float64 {
	g := e.notReached[u]
	if e.asum != nil && e.asum[u] == 0 {
		return g // u has no influence mass: it reaches only itself
	}
	// Hoist every field into a local: the Dot call below is not inlined,
	// so field loads through e would otherwise be re-issued each
	// iteration of this O(n)-trip loop.
	au := e.m.A.Row(u)
	nr, bsum, horizon := e.notReached, e.bsum, e.horizon
	bdata, kdim := e.m.B.Data, e.m.B.ColsN
	if bsum == nil {
		for v, off := 0, 0; v < e.n; v, off = v+1, off+kdim {
			if v == u {
				continue
			}
			rate := vecmath.Dot(au, bdata[off:off+kdim])
			if rate <= 0 {
				continue
			}
			g += nr[v] * (1 - math.Exp(-rate*horizon))
		}
		return g
	}
	for v, off := 0, 0; v < e.n; v, off = v+1, off+kdim {
		if v == u || bsum[v] == 0 { // bsum==0: v is unreachable under the model
			continue
		}
		rate := vecmath.Dot(au, bdata[off:off+kdim])
		if rate <= 0 {
			continue
		}
		g += nr[v] * (1 - math.Exp(-rate*horizon))
	}
	return g
}

// fold absorbs a newly chosen seed into notReached (the seed itself
// becomes fully active).
func (e *gainEval) fold(u int) {
	e.notReached[u] = 0
	if e.asum != nil && e.asum[u] == 0 {
		return
	}
	au := e.m.A.Row(u)
	nr, bsum, horizon := e.notReached, e.bsum, e.horizon
	bdata, kdim := e.m.B.Data, e.m.B.ColsN
	for v, off := 0, 0; v < e.n; v, off = v+1, off+kdim {
		if v == u || (bsum != nil && bsum[v] == 0) {
			continue
		}
		rate := vecmath.Dot(au, bdata[off:off+kdim])
		if rate <= 0 {
			continue
		}
		nr[v] *= math.Exp(-rate * horizon)
	}
}

// GreedyOpt is GreedyCtx with explicit parallelism and precomputation
// options. The initial marginal-gain pass shards the candidate set
// across workers; afterwards, every stale candidate popped in the same
// CELF round is re-evaluated as one parallel batch. Gains are pure
// functions of the frozen per-round state, so the selection is
// bit-identical to the sequential algorithm for every worker count.
func GreedyOpt(ctx context.Context, m *embed.Model, horizon float64, k int, candidates []int, opt Options) ([]Result, error) {
	if m == nil {
		return nil, fmt.Errorf("inflmax: nil model")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("inflmax: horizon must be positive, got %v", horizon)
	}
	n := m.N()
	if k < 1 {
		return nil, fmt.Errorf("inflmax: k must be >= 1, got %d", k)
	}
	if candidates == nil {
		candidates = make([]int, n)
		for i := range candidates {
			candidates[i] = i
		}
	}
	for _, u := range candidates {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("inflmax: candidate %d out of range [0,%d)", u, n)
		}
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	// notReached[v] = prod over chosen seeds (1 - p(u,v)); coverage is
	// sum(1 - notReached).
	notReached := make([]float64, n)
	for i := range notReached {
		notReached[i] = 1
	}
	eval := &gainEval{m: m, horizon: horizon, n: n, notReached: notReached}
	if opt.Pre.matches(n) {
		eval.asum, eval.bsum = opt.Pre.ASum, opt.Pre.BSum
	}
	workers := opt.workers()

	// Initial marginal-gain pass: every candidate against the empty seed
	// set, sharded across workers. Each worker owns one contiguous shard
	// and checks cancellation every gainCheckStride evaluations.
	gains := make([]float64, len(candidates))
	if workers <= 1 || len(candidates) < 2 {
		for i, u := range candidates {
			if i%gainCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			gains[i] = eval.gain(u)
		}
	} else {
		shards := workers
		if shards > len(candidates) {
			shards = len(candidates)
		}
		err := pool.RunCtx(ctx, workers, shards, func(s int) error {
			lo := s * len(candidates) / shards
			hi := (s + 1) * len(candidates) / shards
			for i := lo; i < hi; i++ {
				if (i-lo)%gainCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				gains[i] = eval.gain(candidates[i])
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	q := make(celfQueue, 0, len(candidates))
	for i, u := range candidates {
		q = append(q, &celfItem{node: u, gain: gains[i], round: 0})
	}
	heap.Init(&q)

	var out []Result
	total := 0.0
	chosen := make(map[int]bool, k)
	stale := make([]*celfItem, 0, workers)
	for len(out) < k && q.Len() > 0 {
		// Chaos hook: lets tests stall or fail the greedy loop mid
		// selection ("inflmax.greedy" armed with Sleep or Error).
		if err := faultinject.Fire("inflmax.greedy"); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Pop stale candidates off the top into a batch, up to one per
		// worker, stopping at the first fresh item. Submodularity makes
		// every stale gain an upper bound, so anything below a fresh top
		// can stay stale untouched.
		stale = stale[:0]
		for q.Len() > 0 && len(stale) < workers {
			top := q[0]
			if chosen[top.node] {
				heap.Pop(&q) // duplicate candidate id, already selected
				continue
			}
			if top.round == len(out) {
				break
			}
			heap.Pop(&q)
			stale = append(stale, top)
		}
		if len(stale) > 0 {
			// Lazy re-evaluation, batched: all batch gains are computed
			// against the same frozen notReached, exactly the values a
			// sequential CELF would find one heap.Fix at a time.
			round := len(out)
			if len(stale) == 1 || workers <= 1 {
				for _, it := range stale {
					it.gain = eval.gain(it.node)
					it.round = round
				}
			} else {
				err := pool.RunCtx(ctx, workers, len(stale), func(i int) error {
					stale[i].gain = eval.gain(stale[i].node)
					stale[i].round = round
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
			for _, it := range stale {
				heap.Push(&q, it)
			}
			continue
		}
		if q.Len() == 0 {
			break
		}
		top := heap.Pop(&q).(*celfItem)
		chosen[top.node] = true
		total += top.gain
		out = append(out, Result{Node: top.node, Gain: top.gain, Total: total})
		eval.fold(top.node)
	}
	return out, nil
}

// Coverage evaluates the direct-coverage objective f(S) for an explicit
// seed set (useful for comparing seed sets chosen by other heuristics).
func Coverage(m *embed.Model, horizon float64, seeds []int) (float64, error) {
	return CoverageOpt(m, horizon, seeds, Options{})
}

// CoverageOpt is Coverage with the dead-row shortcuts from a Precomp.
// Seeds are deduplicated and evaluated in sorted order, so the float
// accumulation — and therefore the result — is deterministic.
func CoverageOpt(m *embed.Model, horizon float64, seeds []int, opt Options) (float64, error) {
	if m == nil {
		return 0, fmt.Errorf("inflmax: nil model")
	}
	if horizon <= 0 {
		return 0, fmt.Errorf("inflmax: horizon must be positive, got %v", horizon)
	}
	n := m.N()
	inSet := make(map[int]bool, len(seeds))
	uniq := make([]int, 0, len(seeds))
	for _, u := range seeds {
		if u < 0 || u >= n {
			return 0, fmt.Errorf("inflmax: seed %d out of range [0,%d)", u, n)
		}
		if !inSet[u] {
			inSet[u] = true
			uniq = append(uniq, u)
		}
	}
	sort.Ints(uniq)
	var asum, bsum []float64
	if opt.Pre.matches(n) {
		asum, bsum = opt.Pre.ASum, opt.Pre.BSum
	}
	total := float64(len(uniq)) // seeds are active by definition
	for v := 0; v < n; v++ {
		if inSet[v] {
			continue
		}
		if bsum != nil && bsum[v] == 0 {
			continue // unreachable target: contributes nothing
		}
		notReached := 1.0
		bv := m.B.Row(v)
		for _, u := range uniq {
			if asum != nil && asum[u] == 0 {
				continue
			}
			rate := vecmath.Dot(m.A.Row(u), bv)
			if rate > 0 {
				notReached *= math.Exp(-rate * horizon)
			}
		}
		total += 1 - notReached
	}
	return total, nil
}
