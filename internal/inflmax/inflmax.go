// Package inflmax solves the influence-maximization problem of Kempe,
// Kleinberg & Tardos (the paper's reference [11], whose propagation
// model this repository simulates) on top of the *inferred* embeddings:
// choose k seed nodes maximizing the expected number of nodes reached
// within a time horizon. It is the natural operational application of
// the fitted model — "whom should we hand the story to?" — and needs no
// network topology, only the influence/selectivity vectors.
//
// Under the embedding model, seed u reaches v within horizon T directly
// with probability p(u,v) = 1 - exp(-A[u]·B[v]·T). The expected direct
// coverage of a seed set S, with the standard independence
// approximation, is
//
//	f(S) = sum_v [ 1 - prod_{u in S} (1 - p(u,v)) ]
//
// plus the seeds themselves (a seeded node is active by definition, the
// standard IC convention). The objective is monotone and submodular, so
// lazy greedy selection (CELF) carries the classic (1 - 1/e) guarantee
// relative to the best seed set under the same objective.
package inflmax

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"viralcast/internal/embed"
	"viralcast/internal/faultinject"
)

// Result describes one selected seed.
type Result struct {
	Node int
	// Gain is the marginal expected coverage this seed added.
	Gain float64
	// Total is the expected coverage of the seed set up to this seed.
	Total float64
}

// celfItem is a lazily evaluated candidate in the CELF queue.
type celfItem struct {
	node    int
	gain    float64
	round   int // the selection round the gain was computed in
	heapIdx int
}

type celfQueue []*celfItem

func (q celfQueue) Len() int           { return len(q) }
func (q celfQueue) Less(i, j int) bool { return q[i].gain > q[j].gain }
func (q celfQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].heapIdx = i; q[j].heapIdx = j }
func (q *celfQueue) Push(x any)        { it := x.(*celfItem); it.heapIdx = len(*q); *q = append(*q, it) }
func (q *celfQueue) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Greedy selects up to k seeds with lazy greedy (CELF) under the
// direct-coverage objective at the given horizon. Candidates may
// restrict the eligible seed nodes (nil means all nodes).
func Greedy(m *embed.Model, horizon float64, k int, candidates []int) ([]Result, error) {
	return GreedyCtx(context.Background(), m, horizon, k, candidates)
}

// gainCheckStride bounds how much work runs between cancellation
// checks inside the greedy loops: one check per this many O(n·K) gain
// evaluations keeps the overhead unmeasurable while a canceled caller
// (request deadline hit, client gone) stops within a few milliseconds
// of real compute instead of finishing an O(n²·K) selection.
const gainCheckStride = 64

// GreedyCtx is Greedy with cancellation: the selection checks ctx
// between gain evaluations and returns ctx.Err() as soon as it is
// canceled, so a serving deadline bounds the CPU a request can burn.
func GreedyCtx(ctx context.Context, m *embed.Model, horizon float64, k int, candidates []int) ([]Result, error) {
	if m == nil {
		return nil, fmt.Errorf("inflmax: nil model")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("inflmax: horizon must be positive, got %v", horizon)
	}
	n := m.N()
	if k < 1 {
		return nil, fmt.Errorf("inflmax: k must be >= 1, got %d", k)
	}
	if candidates == nil {
		candidates = make([]int, n)
		for i := range candidates {
			candidates[i] = i
		}
	}
	for _, u := range candidates {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("inflmax: candidate %d out of range [0,%d)", u, n)
		}
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	// notReached[v] = prod over chosen seeds (1 - p(u,v)); coverage is
	// sum(1 - notReached).
	notReached := make([]float64, n)
	for i := range notReached {
		notReached[i] = 1
	}
	gainOf := func(u int) float64 {
		// Seeding u makes u itself fully active (its residual notReached
		// mass converts to coverage) and adds direct-reach mass to every
		// still-unreached target.
		g := notReached[u]
		au := m.A.Row(u)
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			rate := dot(au, m.B.Row(v))
			if rate <= 0 {
				continue
			}
			p := 1 - math.Exp(-rate*horizon)
			g += notReached[v] * p
		}
		return g
	}
	q := make(celfQueue, 0, len(candidates))
	for i, u := range candidates {
		if i%gainCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		q = append(q, &celfItem{node: u, gain: gainOf(u), round: 0})
	}
	heap.Init(&q)
	var out []Result
	total := 0.0
	chosen := make(map[int]bool, k)
	for len(out) < k && q.Len() > 0 {
		// Chaos hook: lets tests stall or fail the greedy loop mid
		// selection ("inflmax.greedy" armed with Sleep or Error).
		if err := faultinject.Fire("inflmax.greedy"); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		top := q[0]
		if chosen[top.node] {
			heap.Pop(&q)
			continue
		}
		if top.round != len(out) {
			// Stale gain: recompute lazily and resift. Submodularity
			// guarantees gains only shrink, so a still-top refreshed item
			// is optimal.
			top.gain = gainOf(top.node)
			top.round = len(out)
			heap.Fix(&q, top.heapIdx)
			continue
		}
		heap.Pop(&q)
		chosen[top.node] = true
		total += top.gain
		out = append(out, Result{Node: top.node, Gain: top.gain, Total: total})
		// Fold the new seed into notReached; the seed itself is active.
		notReached[top.node] = 0
		au := m.A.Row(top.node)
		for v := 0; v < n; v++ {
			if v == top.node {
				continue
			}
			rate := dot(au, m.B.Row(v))
			if rate <= 0 {
				continue
			}
			notReached[v] *= math.Exp(-rate * horizon)
		}
	}
	return out, nil
}

// Coverage evaluates the direct-coverage objective f(S) for an explicit
// seed set (useful for comparing seed sets chosen by other heuristics).
func Coverage(m *embed.Model, horizon float64, seeds []int) (float64, error) {
	if m == nil {
		return 0, fmt.Errorf("inflmax: nil model")
	}
	if horizon <= 0 {
		return 0, fmt.Errorf("inflmax: horizon must be positive, got %v", horizon)
	}
	n := m.N()
	inSet := make(map[int]bool, len(seeds))
	for _, u := range seeds {
		if u < 0 || u >= n {
			return 0, fmt.Errorf("inflmax: seed %d out of range [0,%d)", u, n)
		}
		inSet[u] = true
	}
	total := float64(len(inSet)) // seeds are active by definition
	for v := 0; v < n; v++ {
		if inSet[v] {
			continue
		}
		notReached := 1.0
		bv := m.B.Row(v)
		for u := range inSet {
			rate := dot(m.A.Row(u), bv)
			if rate > 0 {
				notReached *= math.Exp(-rate * horizon)
			}
		}
		total += 1 - notReached
	}
	return total, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}
