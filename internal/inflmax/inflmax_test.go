package inflmax

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"viralcast/internal/embed"
	"viralcast/internal/faultinject"
	"viralcast/internal/xrand"
)

// starModel: node 0 has overwhelming influence; everyone else is quiet.
func starModel(n int) *embed.Model {
	m := embed.NewModel(n, 1)
	m.A.Set(0, 0, 5)
	for v := 0; v < n; v++ {
		m.B.Set(v, 0, 1)
		if v > 0 {
			m.A.Set(v, 0, 0.01)
		}
	}
	return m
}

func TestGreedyPicksTheHub(t *testing.T) {
	m := starModel(20)
	res, err := Greedy(m, 1.0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Node != 0 {
		t.Fatalf("greedy missed the hub: %+v", res)
	}
	// The hub reaches nearly everyone: coverage close to n.
	if res[0].Total < 15 {
		t.Errorf("hub coverage %v unexpectedly low", res[0].Total)
	}
}

func TestGreedyTotalsMatchCoverage(t *testing.T) {
	rng := xrand.New(1)
	m := embed.NewModel(30, 3)
	m.InitUniform(rng, 0, 0.8)
	res, err := Greedy(m, 2.0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("selected %d seeds", len(res))
	}
	seeds := make([]int, len(res))
	for i, r := range res {
		seeds[i] = r.Node
	}
	cov, err := Coverage(m, 2.0, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov-res[len(res)-1].Total) > 1e-6*(1+cov) {
		t.Fatalf("greedy total %v != Coverage %v", res[len(res)-1].Total, cov)
	}
	// Marginal gains must be non-increasing (submodularity).
	for i := 1; i < len(res); i++ {
		if res[i].Gain > res[i-1].Gain+1e-9 {
			t.Fatalf("gains not diminishing: %+v", res)
		}
	}
}

func TestGreedyBeatsRandomSeeds(t *testing.T) {
	rng := xrand.New(2)
	m := embed.NewModel(40, 2)
	m.InitUniform(rng, 0, 0.6)
	res, err := Greedy(m, 1.5, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	greedyCov := res[len(res)-1].Total
	worse := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		seeds := rng.Perm(40)[:4]
		cov, err := Coverage(m, 1.5, seeds)
		if err != nil {
			t.Fatal(err)
		}
		if cov <= greedyCov+1e-9 {
			worse++
		}
	}
	if worse < trials*9/10 {
		t.Errorf("greedy beaten by %d/%d random seed sets", trials-worse, trials)
	}
}

func TestGreedyCandidatesRestriction(t *testing.T) {
	m := starModel(20)
	// Exclude the hub: greedy must pick from the allowed set only.
	res, err := Greedy(m, 1.0, 2, []int{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Node != 5 && r.Node != 6 && r.Node != 7 {
			t.Fatalf("seed %d outside candidate set", r.Node)
		}
	}
}

func TestGreedyValidation(t *testing.T) {
	m := starModel(5)
	if _, err := Greedy(nil, 1, 1, nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Greedy(m, 0, 1, nil); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Greedy(m, 1, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Greedy(m, 1, 1, []int{99}); err == nil {
		t.Error("bad candidate accepted")
	}
	if _, err := Coverage(m, 1, []int{99}); err == nil {
		t.Error("bad seed accepted in Coverage")
	}
	// k greater than candidates clamps.
	res, err := Greedy(m, 1, 10, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("k clamp failed: %d seeds", len(res))
	}
}

// Property: coverage is monotone in the seed set and bounded by n.
func TestCoverageMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(20)
		m := embed.NewModel(n, 2)
		m.InitUniform(rng, 0, 1)
		perm := rng.Perm(n)
		k := 1 + rng.Intn(n-1)
		small, err := Coverage(m, 1, perm[:k])
		if err != nil {
			return false
		}
		big, err := Coverage(m, 1, perm[:k+1])
		if err != nil {
			return false
		}
		return big >= small-1e-9 && big <= float64(n)+1e-9 && small >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGreedy(b *testing.B) {
	rng := xrand.New(1)
	m := embed.NewModel(500, 4)
	m.InitUniform(rng, 0, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(m, 2.0, 10, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGreedyCtxCancellation(t *testing.T) {
	m := starModel(400)
	// Already-canceled context: the selection must not run at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GreedyCtx(ctx, m, 1, 5, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled GreedyCtx err = %v, want context.Canceled", err)
	}
	// Cancellation mid-selection: arm a Call fault that cancels the
	// context at the second CELF iteration; the loop must notice.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	inj := faultinject.NewInjector()
	inj.Arm(faultinject.Fault{Site: "inflmax.greedy", Action: faultinject.Call, Hit: 2, Fn: cancel2})
	defer faultinject.Activate(inj)()
	out, err := GreedyCtx(ctx2, m, 1, 50, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-selection GreedyCtx = (%d seeds, %v), want context.Canceled", len(out), err)
	}
}

func TestGreedyCtxUncanceledMatchesGreedy(t *testing.T) {
	m := starModel(60)
	a, err := Greedy(m, 1.5, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyCtx(context.Background(), m, 1.5, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Gain != b[i].Gain {
			t.Fatalf("seed %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGreedyInjectedError(t *testing.T) {
	m := starModel(30)
	boom := errors.New("injected greedy failure")
	inj := faultinject.NewInjector()
	inj.Arm(faultinject.Fault{Site: "inflmax.greedy", Action: faultinject.Error, Hit: 1, Err: boom})
	defer faultinject.Activate(inj)()
	if _, err := Greedy(m, 1, 3, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
}
