// Package report renders experiment results as CSV series (the data
// behind every reproduced figure) and quick ASCII plots for terminal
// inspection. Every figure harness in internal/experiments emits its
// series through this package so the regeneration pipeline has one
// output layer.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteCSV writes a header row and float rows with stable formatting.
func WriteCSV(w io.Writer, header []string, rows [][]float64) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("report: row %d has %d fields, header has %d", i, len(row), len(header))
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = strconv.FormatFloat(v, 'g', 8, 64)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Point is one (X, Y) observation for scatter and line plots.
type Point struct{ X, Y float64 }

// ASCIIScatter renders points in a width x height character grid with
// simple axis annotations — the terminal rendition of the paper's
// feature-vs-size scatter plots (Figures 6-8).
func ASCIIScatter(points []Point, width, height int) string {
	if len(points) == 0 || width < 8 || height < 3 {
		return "(no data)\n"
	}
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		c := int((p.X - minX) / (maxX - minX) * float64(width-1))
		r := int((p.Y - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "y: %.3g .. %.3g\n", minY, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "x: %.3g .. %.3g\n", minX, maxX)
	return b.String()
}

// ASCIIHistogram renders labeled counts as horizontal bars.
func ASCIIHistogram(labels []string, counts []int, maxBar int) string {
	if len(labels) != len(counts) || len(labels) == 0 {
		return "(no data)\n"
	}
	if maxBar < 1 {
		maxBar = 40
	}
	peak := 0
	labelWidth := 0
	for i, c := range counts {
		if c > peak {
			peak = c
		}
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	var b strings.Builder
	for i, c := range counts {
		bar := 0
		if peak > 0 {
			bar = c * maxBar / peak
		}
		fmt.Fprintf(&b, "%-*s | %s %d\n", labelWidth, labels[i], strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Series is one named line for multi-series plots (e.g. time vs cores
// for several cascade counts, Figure 10).
type Series struct {
	Name   string
	Points []Point
}

// ASCIILines renders multiple series on a shared grid, one rune per
// series.
func ASCIILines(series []Series, width, height int) string {
	if len(series) == 0 || width < 8 || height < 3 {
		return "(no data)\n"
	}
	marks := []byte("*o+x#@%&")
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			c := int((p.X - minX) / (maxX - minX) * float64(width-1))
			r := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-r][c] = mark
		}
	}
	var b strings.Builder
	for si, s := range series {
		fmt.Fprintf(&b, "%c = %s\n", marks[si%len(marks)], s.Name)
	}
	fmt.Fprintf(&b, "y: %.3g .. %.3g\n", minY, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "x: %.3g .. %.3g\n", minX, maxX)
	return b.String()
}

// Table renders rows of cells as an aligned text table with a header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a float compactly for tables.
func FormatFloat(v float64, prec int) string {
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// SortPointsByX sorts a point slice in ascending X order in place.
func SortPointsByX(points []Point) {
	sort.Slice(points, func(i, j int) bool { return points[i].X < points[j].X })
}
