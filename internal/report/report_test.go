package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"x", "y"}, [][]float64{{1, 2}, {3.5, 4.25}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,2" {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "3.5") || !strings.Contains(lines[2], "4.25") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestWriteCSVRaggedRow(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"a", "b"}, [][]float64{{1}}); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestASCIIScatter(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {0.5, 0.5}}
	out := ASCIIScatter(pts, 20, 10)
	if !strings.Contains(out, "*") {
		t.Fatalf("no points rendered:\n%s", out)
	}
	if !strings.Contains(out, "x: 0 .. 1") {
		t.Errorf("x axis missing:\n%s", out)
	}
	// 10 grid rows plus annotations.
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Errorf("too few lines: %d", lines)
	}
	if got := ASCIIScatter(nil, 20, 10); got != "(no data)\n" {
		t.Errorf("empty scatter = %q", got)
	}
}

func TestASCIIScatterDegenerate(t *testing.T) {
	// Identical points must not divide by zero.
	out := ASCIIScatter([]Point{{2, 3}, {2, 3}}, 10, 4)
	if !strings.Contains(out, "*") {
		t.Fatalf("degenerate scatter lost point:\n%s", out)
	}
}

func TestASCIIHistogram(t *testing.T) {
	out := ASCIIHistogram([]string{"a", "bb"}, []int{10, 5}, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Errorf("peak bar not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if got := ASCIIHistogram(nil, nil, 10); got != "(no data)\n" {
		t.Errorf("empty histogram = %q", got)
	}
}

func TestASCIILines(t *testing.T) {
	s := []Series{
		{Name: "fast", Points: []Point{{1, 1}, {2, 2}}},
		{Name: "slow", Points: []Point{{1, 2}, {2, 4}}},
	}
	out := ASCIILines(s, 20, 8)
	if !strings.Contains(out, "fast") || !strings.Contains(out, "slow") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("series markers missing:\n%s", out)
	}
	if got := ASCIILines(nil, 20, 8); got != "(no data)\n" {
		t.Errorf("empty lines = %q", got)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"col", "value"}, [][]string{{"a", "1"}, {"long-name", "2"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	// Aligned: all rows same display width for first column.
	if !strings.HasPrefix(lines[3], "long-name") {
		t.Errorf("row misaligned: %q", lines[3])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(1.23456, 2) != "1.23" {
		t.Errorf("FormatFloat = %q", FormatFloat(1.23456, 2))
	}
}

func TestSortPointsByX(t *testing.T) {
	pts := []Point{{3, 0}, {1, 0}, {2, 0}}
	SortPointsByX(pts)
	if pts[0].X != 1 || pts[1].X != 2 || pts[2].X != 3 {
		t.Fatalf("sorted = %v", pts)
	}
}
