package pool

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestChunkedCtxCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ workers, n, chunk int }{
		{1, 1, 1}, {4, 100, 7}, {8, 100, 100}, {3, 10, 0}, {16, 5, 2},
	} {
		hits := make([]int, tc.n)
		var mu sync.Mutex
		err := ChunkedCtx(context.Background(), tc.workers, tc.n, tc.chunk, func(lo, hi int) error {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("bad range [%d,%d) for n=%d", lo, hi, tc.n)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				hits[i]++
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("%+v: index %d visited %d times", tc, i, h)
			}
		}
	}
}

func TestChunkedCtxPropagatesErrorAndCancellation(t *testing.T) {
	boom := errors.New("boom")
	err := ChunkedCtx(context.Background(), 4, 50, 5, func(lo, hi int) error {
		if lo == 20 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = ChunkedCtx(ctx, 4, 50, 5, func(lo, hi int) error { return nil })
	if err != context.Canceled {
		t.Fatalf("canceled err = %v, want context.Canceled", err)
	}
	if err := ChunkedCtx(context.Background(), 4, 0, 5, func(lo, hi int) error {
		t.Error("task invoked for n=0")
		return nil
	}); err != nil {
		t.Fatalf("n=0 err = %v", err)
	}
}
