package pool

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"viralcast/internal/faultinject"
)

func TestRunCtxStopsSchedulingOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var scheduled atomic.Int64
	err := RunCtx(ctx, 1, 100, func(i int) error {
		scheduled.Add(1)
		if i == 4 {
			cancel() // fires before this task returns its worker slot
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// workers=1 serializes scheduling, so nothing past task 4 may start.
	if got := scheduled.Load(); got != 5 {
		t.Fatalf("scheduled %d tasks after cancellation at task 4", got)
	}
}

func TestRunCtxCancelBeatsTaskError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := RunCtx(ctx, 1, 10, func(i int) error {
		if i == 2 {
			cancel()
			return errors.New("doomed task error")
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled to outrank the task error", err)
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := RunCtx(ctx, 4, 10, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran under a pre-canceled context", ran.Load())
	}
}

func TestMapCtxDiscardsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out, err := MapCtx(ctx, 1, 10, func(i int) (int, error) {
		if i == 3 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestPanicErrorCarriesStack(t *testing.T) {
	err := Run(2, 4, func(i int) error {
		if i == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "kaboom") {
		t.Fatalf("panic value missing from error: %q", msg)
	}
	// debug.Stack output names the goroutine and the frames, including
	// this test function — that is what makes the crash diagnosable.
	if !strings.Contains(msg, "goroutine") || !strings.Contains(msg, "TestPanicErrorCarriesStack") {
		t.Fatalf("stack trace missing from panic error:\n%s", msg)
	}
}

func TestRunWithInjectedFaults(t *testing.T) {
	inj := faultinject.NewInjector()
	want := errors.New("injected task failure")
	inj.Arm(faultinject.Fault{Site: "pool.task", Action: faultinject.Error, Hit: 3, Err: want})
	inj.Arm(faultinject.Fault{Site: "pool.task", Action: faultinject.Panic, Hit: 7})
	defer faultinject.Activate(inj)()

	var completed atomic.Int64
	err := Run(2, 10, func(i int) error {
		if err := faultinject.Fire("pool.task"); err != nil {
			return err
		}
		completed.Add(1)
		return nil
	})
	// Hit 3 fails with the injected error and hit 7 panics; the pool must
	// contain both, finish the remaining 8 tasks, and surface one error.
	if err == nil {
		t.Fatal("injected faults produced no error")
	}
	if completed.Load() != 8 {
		t.Fatalf("completed %d tasks, want 8", completed.Load())
	}
	if inj.Fired("pool.task") != 2 {
		t.Fatalf("fired %d faults, want 2", inj.Fired("pool.task"))
	}
}
