// Package pool provides the bounded-concurrency primitives the parallel
// inference uses: run n independent tasks on at most w workers, with
// deterministic result placement, first-error propagation, and panic
// containment. It is the Go-native equivalent of the per-community
// process pool in the paper's Algorithm 1 — a barrier at the end of Run
// is the algorithm's explicit synchronization point.
package pool

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// Run executes task(0..n-1) with at most `workers` invocations in flight
// at once and waits for all of them (the barrier). The first error
// encountered is returned; remaining tasks still run to completion so
// the caller never observes a half-synchronized state. A panicking task
// is converted into an error rather than tearing down the process.
func Run(workers, n int, task func(i int) error) error {
	return RunCtx(context.Background(), workers, n, task)
}

// RunCtx is Run with cancellation: once ctx is done, no new tasks are
// scheduled; tasks already in flight run to completion (they observe ctx
// themselves if they want to stop early), and the barrier still holds.
// If the context caused the early stop, ctx.Err() is returned even when
// a task also failed — the caller asked to stop, and that decision
// outranks whatever the doomed tasks reported on the way down.
func RunCtx(ctx context.Context, workers, n int, task func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	sem := make(chan struct{}, workers)
	canceled := false
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			canceled = true
			break
		}
		// Block for a worker slot, but wake up if the run is canceled
		// while every slot is busy.
		select {
		case <-ctx.Done():
			canceled = true
		case sem <- struct{}{}:
		}
		if canceled {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					// The stack makes a worker crash diagnosable after the
					// goroutine that produced it is long gone.
					record(fmt.Errorf("pool: task %d panicked: %v\n%s", i, r, debug.Stack()))
				}
			}()
			record(task(i))
		}(i)
	}
	wg.Wait()
	if canceled || ctx.Err() != nil {
		return ctx.Err()
	}
	return firstErr
}

// ChunkedCtx runs task over contiguous index ranges [lo, hi) covering
// [0, n), at most `workers` ranges in flight, with RunCtx's barrier,
// cancellation, and panic semantics. It exists for workloads whose unit
// of work is too small to schedule one goroutine each — Monte Carlo
// trials, per-row scans — where per-task channel traffic would dominate
// the work itself. Chunks are fixed-size and deterministic, so a task
// writing results by index produces identical placement at any worker
// count. chunk <= 0 defaults to ceil(n/workers) (one range per worker).
func ChunkedCtx(ctx context.Context, workers, n, chunk int, task func(lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if chunk <= 0 {
		chunk = (n + workers - 1) / workers
	}
	chunks := (n + chunk - 1) / chunk
	return RunCtx(ctx, workers, chunks, func(c int) error {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return task(lo, hi)
	})
}

// GatherCtx runs task(0..n-1) with at most `workers` in flight and
// collects per-index results AND per-index errors — no first-error
// short-circuit, no discarding of sibling results. It is the fan-out
// primitive for scatter-gather serving: a router querying N shards
// wants every shard's answer that arrived plus a precise record of
// which shards failed, so it can merge the successes into a partial
// result instead of throwing the whole fan-out away because one shard
// was down. Panics are contained into that index's error slot. Once
// ctx is done no new tasks are scheduled; unscheduled indexes carry
// ctx.Err() so the caller can tell "never attempted" from "attempted
// and failed" only by the error value, and the barrier still holds for
// the tasks already in flight.
func GatherCtx[T any](ctx context.Context, workers, n int, task func(i int) (T, error)) ([]T, []error) {
	out := make([]T, n)
	errs := make([]error, n)
	if n <= 0 {
		return out, errs
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	i := 0
	for ; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
		case sem <- struct{}{}:
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("pool: task %d panicked: %v\n%s", i, r, debug.Stack())
				}
			}()
			out[i], errs[i] = task(i)
		}(i)
	}
	for j := i; j < n; j++ {
		errs[j] = ctx.Err()
	}
	wg.Wait()
	return out, errs
}

// Map runs task(0..n-1) under Run's discipline and collects the results
// in index order, so output placement is deterministic regardless of
// scheduling. On error the partial results are discarded.
func Map[T any](workers, n int, task func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, task)
}

// MapCtx is Map with RunCtx's cancellation semantics: on a done context
// the partial results are discarded and ctx.Err() is returned.
func MapCtx[T any](ctx context.Context, workers, n int, task func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := RunCtx(ctx, workers, n, func(i int) error {
		v, err := task(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
