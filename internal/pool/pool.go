// Package pool provides the bounded-concurrency primitives the parallel
// inference uses: run n independent tasks on at most w workers, with
// deterministic result placement, first-error propagation, and panic
// containment. It is the Go-native equivalent of the per-community
// process pool in the paper's Algorithm 1 — a barrier at the end of Run
// is the algorithm's explicit synchronization point.
package pool

import (
	"fmt"
	"sync"
)

// Run executes task(0..n-1) with at most `workers` invocations in flight
// at once and waits for all of them (the barrier). The first error
// encountered is returned; remaining tasks still run to completion so
// the caller never observes a half-synchronized state. A panicking task
// is converted into an error rather than tearing down the process.
func Run(workers, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					record(fmt.Errorf("pool: task %d panicked: %v", i, r))
				}
			}()
			record(task(i))
		}(i)
	}
	wg.Wait()
	return firstErr
}

// Map runs task(0..n-1) under Run's discipline and collects the results
// in index order, so output placement is deterministic regardless of
// scheduling. On error the partial results are discarded.
func Map[T any](workers, n int, task func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(workers, n, func(i int) error {
		v, err := task(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
