package pool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesAll(t *testing.T) {
	var count atomic.Int64
	err := Run(4, 100, func(i int) error {
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("executed %d of 100", count.Load())
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	err := Run(3, 50, func(i int) error {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Fatalf("concurrency peak %d exceeds bound 3", peak.Load())
	}
	// On a 1-core host the peak may be < 3; it must be at least 1.
	if peak.Load() < 1 {
		t.Fatalf("nothing ran concurrently at all: peak %d", peak.Load())
	}
}

func TestRunReturnsFirstErrorButFinishes(t *testing.T) {
	sentinel := errors.New("boom")
	var count atomic.Int64
	err := Run(2, 20, func(i int) error {
		count.Add(1)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if count.Load() != 20 {
		t.Fatalf("error aborted remaining tasks: %d of 20 ran", count.Load())
	}
}

func TestRunContainsPanics(t *testing.T) {
	err := Run(2, 10, func(i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestRunDegenerateInputs(t *testing.T) {
	if err := Run(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal("n=0 must be a no-op")
	}
	var ran atomic.Int64
	if err := Run(0, 5, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 5 {
		t.Fatal("workers=0 must clamp to 1 and still run")
	}
}

func TestMapOrdersResults(t *testing.T) {
	out, err := Map(4, 50, func(i int) (int, error) {
		time.Sleep(time.Duration(50-i) * time.Microsecond) // finish out of order
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapDiscardsOnError(t *testing.T) {
	out, err := Map(2, 10, func(i int) (string, error) {
		if i == 7 {
			return "", fmt.Errorf("task %d failed", i)
		}
		return "ok", nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if out != nil {
		t.Fatal("partial results returned on error")
	}
}

func TestGatherCollectsResultsAndErrors(t *testing.T) {
	out, errs := GatherCtx(context.Background(), 3, 10, func(i int) (int, error) {
		if i%4 == 1 {
			return 0, fmt.Errorf("task %d failed", i)
		}
		return i * 10, nil
	})
	if len(out) != 10 || len(errs) != 10 {
		t.Fatalf("lengths %d/%d, want 10/10", len(out), len(errs))
	}
	for i := range out {
		if i%4 == 1 {
			if errs[i] == nil {
				t.Fatalf("errs[%d] = nil, want failure", i)
			}
			continue
		}
		// A failing sibling must not discard this index's result.
		if errs[i] != nil || out[i] != i*10 {
			t.Fatalf("index %d: out=%d err=%v", i, out[i], errs[i])
		}
	}
}

func TestGatherContainsPanicsPerIndex(t *testing.T) {
	out, errs := GatherCtx(context.Background(), 2, 4, func(i int) (string, error) {
		if i == 2 {
			panic("boom")
		}
		return "ok", nil
	})
	if errs[2] == nil || !strings.Contains(errs[2].Error(), "panicked") {
		t.Fatalf("panic not contained into errs[2]: %v", errs[2])
	}
	for _, i := range []int{0, 1, 3} {
		if errs[i] != nil || out[i] != "ok" {
			t.Fatalf("index %d poisoned by sibling panic: out=%q err=%v", i, out[i], errs[i])
		}
	}
}

func TestGatherCancellationMarksUnscheduled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var sawCancel atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, errs := GatherCtx(ctx, 1, 5, func(i int) (int, error) {
			if i == 0 {
				close(started)
				<-release
			}
			return i, nil
		})
		// With one worker wedged on task 0 and the context canceled,
		// later indexes must carry ctx.Err(), not silently hold zero
		// values that look like successes.
		for j := 1; j < 5; j++ {
			if errs[j] == context.Canceled {
				sawCancel.Store(true)
			}
		}
	}()
	<-started
	cancel()
	close(release)
	<-done
	if !sawCancel.Load() {
		t.Fatal("no unscheduled index carried ctx.Err() after cancellation")
	}
}
