// Package gdelt provides a synthetic stand-in for the GDELT news-event
// dataset the paper analyzes (§II, §VI-B). The real GDELT corpus (tens of
// thousands of news sites, millions of events, fetched through Google
// BigQuery) is not redistributable here, so this package generates a
// dataset with the same schema — (site, event, report-time) triples —
// engineered to exhibit the three statistical properties the paper
// measures on the real data:
//
//  1. short event life cycles: most reporting happens within the first
//     ~50 hours of an event (paper §II "Emergence of news events");
//  2. regional locality: sites belong to regional communities (US,
//     Australia, UK/Europe, and a mixed pool) and most cascades stay
//     within one region (paper Figures 1-2);
//  3. the Matthew effect: events-reported-per-site follows a power law
//     (paper Figure 3).
//
// Reporting cascades are simulated with the same continuous-time
// propagation model used everywhere else in this repository, driven by a
// planted ground-truth influence/selectivity embedding, so the full
// inference and prediction pipeline runs on this data exactly as it
// would on the real corpus.
package gdelt

import (
	"fmt"
	"math"
	"sort"

	"viralcast/internal/cascade"
	"viralcast/internal/embed"
	"viralcast/internal/graph"
	"viralcast/internal/xrand"
)

// Region describes one regional pool of news sites. Each region owns a
// contiguous slice of the latent topic space (regional stories); sites in
// a Mixed region may cover topics from any region (international outlets).
type Region struct {
	Name     string
	Language string
	Share    float64 // fraction of all sites in this region
	// Mixed regions draw coverage across the whole topic space instead of
	// the region's own slice.
	Mixed bool
}

// Config parameterizes dataset generation.
type Config struct {
	Sites       int     // number of news sites (paper §VI-B uses 6,000)
	Events      int     // number of news events to simulate
	Topics      int     // latent topic count (>= number of regions)
	ZipfS       float64 // popularity exponent for the Matthew effect
	WindowHours float64 // observation window per event (paper: 3 days)
	MeanDegree  float64 // average co-reporting degree inside a region
	CrossLinks  int     // wire-service links between top sites of regions
	// RateScale multiplies every planted hazard rate. The default is
	// calibrated to a near-critical spreading regime, which yields the
	// heavy-tailed cascade sizes real news events show — most events stay
	// tiny, a few go viral.
	RateScale float64
	// ResponseMu and ResponseSigma shape the lognormal spread of site
	// response speeds: selectivity magnitudes are drawn as
	// exp(Normal(ResponseMu, ResponseSigma)). A large sigma puts a heavy
	// fast tail on responses (wire copy within the hour) while most
	// outlets take a day or more — which is what makes the first hours of
	// coverage informative for virality prediction.
	ResponseMu, ResponseSigma float64
	// StalenessHours caps how long after an event breaks that any site
	// will still report it — the paper's §II observation that "a news
	// site would prefer not to report an event which is considered
	// out-of-date" and that most events finish within ~50 hours.
	// Spreading stops at min(WindowHours, StalenessHours).
	StalenessHours float64
	Seed           uint64
	Regions        []Region
}

// DefaultConfig mirrors the paper's GDELT experiment scale, shrunk only
// in raw event count (the paper samples 2,600 events for prediction and
// 5,000 for clustering; pick Events accordingly).
func DefaultConfig() Config {
	return Config{
		Sites:          6000,
		Events:         2600,
		Topics:         40,
		ZipfS:          1.05,
		WindowHours:    72,
		MeanDegree:     18,
		CrossLinks:     900,
		RateScale:      0.12,
		ResponseMu:     -2.0, // -sigma^2/2 keeps the mean response multiplier at 1
		ResponseSigma:  2.0,
		StalenessHours: 46,
		Regions: []Region{
			{Name: "us", Language: "en", Share: 0.40},
			{Name: "au", Language: "en", Share: 0.15},
			{Name: "uk-eu", Language: "mixed-eu", Share: 0.25},
			{Name: "mixed", Language: "mixed", Share: 0.20, Mixed: true},
		},
	}
}

// TopicPool returns the half-open topic range [lo, hi) owned by region
// ri: the topic space is split contiguously across regions in order.
// Mixed regions still own a slice (their "home" stories) but their sites
// may cover any topic.
func (c Config) TopicPool(ri int) (lo, hi int) {
	nr := len(c.Regions)
	lo = ri * c.Topics / nr
	hi = (ri + 1) * c.Topics / nr
	if hi <= lo {
		hi = lo + 1
	}
	if hi > c.Topics {
		hi = c.Topics
	}
	return lo, hi
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.Sites <= 0 || c.Events < 0 {
		return fmt.Errorf("gdelt: need positive Sites and non-negative Events, got %d, %d", c.Sites, c.Events)
	}
	if c.Topics <= 0 {
		return fmt.Errorf("gdelt: Topics must be positive, got %d", c.Topics)
	}
	if len(c.Regions) == 0 {
		return fmt.Errorf("gdelt: no regions configured")
	}
	if c.Topics < len(c.Regions) {
		return fmt.Errorf("gdelt: %d topics cannot cover %d regions", c.Topics, len(c.Regions))
	}
	var share float64
	for _, r := range c.Regions {
		if r.Share <= 0 {
			return fmt.Errorf("gdelt: region %q has non-positive share", r.Name)
		}
		share += r.Share
	}
	if math.Abs(share-1) > 1e-9 {
		return fmt.Errorf("gdelt: region shares sum to %v, want 1", share)
	}
	if c.WindowHours <= 0 {
		return fmt.Errorf("gdelt: WindowHours must be positive, got %v", c.WindowHours)
	}
	if c.MeanDegree <= 0 {
		return fmt.Errorf("gdelt: MeanDegree must be positive, got %v", c.MeanDegree)
	}
	return nil
}

// Site is one news outlet.
type Site struct {
	ID         int
	Name       string
	Region     int     // index into Config.Regions
	Popularity float64 // latent popularity weight (power-law distributed)
}

// Dataset is a generated corpus.
type Dataset struct {
	Config Config
	Sites  []Site
	// Events holds one reporting cascade per news event; infection times
	// are hours since the event's first report.
	Events []*cascade.Cascade
	// Truth is the planted embedding that generated the cascades.
	Truth *embed.Model
	// Graph is the co-reporting substrate the simulation spread on.
	Graph *graph.Graph
}

// Generate builds a synthetic dataset.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	ds := &Dataset{Config: cfg}
	ds.Sites = makeSites(cfg, rng)
	ds.Truth = makeTruth(cfg, ds.Sites, rng)
	g, err := makeGraph(cfg, ds.Sites, rng)
	if err != nil {
		return nil, err
	}
	ds.Graph = g
	effWindow := cfg.WindowHours
	if cfg.StalenessHours > 0 && cfg.StalenessHours < effWindow {
		effWindow = cfg.StalenessHours
	}
	sim, err := cascade.NewSimulator(g, ds.Truth.A, ds.Truth.B, effWindow)
	if err != nil {
		return nil, err
	}
	// Seed events at sites proportionally to log-damped popularity: big
	// outlets break stories more often, but the Pareto tail must not make
	// one outlet the seed of half the corpus.
	cum := make([]float64, len(ds.Sites))
	var total float64
	for i, s := range ds.Sites {
		total += math.Log(1 + s.Popularity)
		cum[i] = total
	}
	for ev := 0; ev < cfg.Events; ev++ {
		u := rng.Float64() * total
		seed := sort.SearchFloat64s(cum, u)
		if seed >= len(ds.Sites) {
			seed = len(ds.Sites) - 1
		}
		c, err := sim.Run(ev, seed, rng)
		if err != nil {
			return nil, err
		}
		ds.Events = append(ds.Events, c)
	}
	return ds, nil
}

// makeSites assigns regions round-robin by share and draws power-law
// popularity weights.
func makeSites(cfg Config, rng *xrand.RNG) []Site {
	sites := make([]Site, cfg.Sites)
	// Deterministic region layout: contiguous blocks per share (keeps the
	// regional community structure obvious and reproducible).
	idx := 0
	for ri, r := range cfg.Regions {
		count := int(math.Round(r.Share * float64(cfg.Sites)))
		if ri == len(cfg.Regions)-1 {
			count = cfg.Sites - idx
		}
		for j := 0; j < count && idx < cfg.Sites; j++ {
			sites[idx] = Site{
				ID:     idx,
				Name:   fmt.Sprintf("news%05d.%s", idx, r.Name),
				Region: ri,
			}
			idx++
		}
	}
	for i := range sites {
		// Pareto weights give the Matthew-effect heavy tail.
		sites[i].Popularity = rng.Pareto(1, cfg.ZipfS)
	}
	return sites
}

// makeTruth plants the ground-truth embedding with *sparse topic
// coverage*: every site covers a small set of topics — at least one from
// its region's pool, more for popular sites (log of popularity), and
// international hubs / mixed-region sites add topics from other regions'
// pools. A pair of sites interacts only on shared covered topics, so
// each event effectively spreads on the percolation subgraph of sites
// covering its topic(s). Coverage sparsity places that subgraph near the
// percolation threshold, producing the heavy-tailed cascade sizes of
// real news: most events stay small, hub-seeded multi-topic events go
// viral. Per-shared-topic rates are fast (hours), so reporting finishes
// within the first ~2 days, matching §II.
func makeTruth(cfg Config, sites []Site, rng *xrand.RNG) *embed.Model {
	m := embed.NewModel(cfg.Sites, cfg.Topics)
	scale := cfg.RateScale
	if scale <= 0 {
		scale = 1
	}
	// Per-shared-topic hazard: mean transmission delay ~6h between two
	// median sites covering the same topic.
	const pairRate = 1.0 / 6.0
	aBase := math.Sqrt(pairRate) * scale
	bBase := math.Sqrt(pairRate)
	mu, sigma := cfg.ResponseMu, cfg.ResponseSigma
	if sigma <= 0 {
		mu, sigma = -0.6, 1.2
	}
	// Hub threshold: the top decile of popularity gains foreign coverage.
	pops := make([]float64, len(sites))
	for i, s := range sites {
		pops[i] = s.Popularity
	}
	sort.Float64s(pops)
	hubCut := pops[len(pops)*9/10]
	for i, s := range sites {
		r := cfg.Regions[s.Region]
		lo, hi := cfg.TopicPool(s.Region)
		poolLo, poolHi := lo, hi
		if r.Mixed {
			poolLo, poolHi = 0, cfg.Topics
		}
		poolSize := poolHi - poolLo
		// Coverage count grows logarithmically with popularity.
		c := 1 + int(0.8*math.Log(1+s.Popularity))
		if c > poolSize {
			c = poolSize
		}
		covered := map[int]bool{}
		for len(covered) < c {
			covered[poolLo+rng.Intn(poolSize)] = true
		}
		// Half the international hubs also pick up one foreign topic — the
		// wire-service channel that occasionally lets a story jump
		// regions without erasing Figure 2's regional block structure.
		if s.Popularity >= hubCut && !r.Mixed && rng.Bernoulli(0.5) {
			covered[rng.Intn(cfg.Topics)] = true
		}
		// Selectivity magnitudes spread over ~2 orders of magnitude
		// (lognormal): some outlets repost within hours, many take days
		// and often miss the story entirely — the temporal heterogeneity
		// that keeps the spreading process near criticality instead of
		// deterministically flooding each topic's subgraph. Topics are
		// visited in sorted order so RNG consumption is deterministic.
		topics := make([]int, 0, len(covered))
		for k := range covered {
			topics = append(topics, k)
		}
		sort.Ints(topics)
		for _, k := range topics {
			m.A.Set(i, k, aBase*(0.5+rng.Float64()))
			m.B.Set(i, k, bBase*math.Exp(rng.Norm(mu, sigma)))
		}
	}
	return m
}

// makeGraph wires the co-reporting substrate: random intra-region links
// with popularity-preferential attachment plus cross-region "wire
// service" links between the most popular sites of different regions.
func makeGraph(cfg Config, sites []Site, rng *xrand.RNG) (*graph.Graph, error) {
	b := graph.NewBuilder(cfg.Sites)
	// Group sites by region and build per-region popularity CDFs so
	// endpoints are drawn preferentially.
	byRegion := make([][]int, len(cfg.Regions))
	for _, s := range sites {
		byRegion[s.Region] = append(byRegion[s.Region], s.ID)
	}
	addUndirected := func(u, v int) {
		if u == v {
			return
		}
		// Duplicate adds just accumulate weight, harmless for spreading.
		_ = b.AddEdge(u, v, 1)
		_ = b.AddEdge(v, u, 1)
	}
	for _, members := range byRegion {
		if len(members) < 2 {
			continue
		}
		cum := make([]float64, len(members))
		var total float64
		for i, id := range members {
			// Log-damped preferential attachment: hubs get high degree
			// without a single outlet wiring up half the region.
			total += math.Log(1 + sites[id].Popularity)
			cum[i] = total
		}
		pick := func() int {
			u := rng.Float64() * total
			i := sort.SearchFloat64s(cum, u)
			if i >= len(members) {
				i = len(members) - 1
			}
			return members[i]
		}
		edges := int(cfg.MeanDegree * float64(len(members)) / 2)
		for e := 0; e < edges; e++ {
			// One uniformly random endpoint, one popularity-weighted: a
			// simple preferential-attachment flavor.
			addUndirected(members[rng.Intn(len(members))], pick())
		}
	}
	// Cross-region wire links between top-popularity sites.
	if len(cfg.Regions) > 1 && cfg.CrossLinks > 0 {
		tops := make([][]int, len(byRegion))
		for ri, members := range byRegion {
			sorted := append([]int(nil), members...)
			sort.Slice(sorted, func(a, b int) bool {
				return sites[sorted[a]].Popularity > sites[sorted[b]].Popularity
			})
			n := len(sorted) / 10
			if n < 1 {
				n = len(sorted)
			}
			tops[ri] = sorted[:n]
		}
		for e := 0; e < cfg.CrossLinks; e++ {
			r1 := rng.Intn(len(tops))
			r2 := rng.Intn(len(tops))
			if r1 == r2 || len(tops[r1]) == 0 || len(tops[r2]) == 0 {
				continue
			}
			addUndirected(tops[r1][rng.Intn(len(tops[r1]))], tops[r2][rng.Intn(len(tops[r2]))])
		}
	}
	return b.Build(), nil
}

// EventDurations returns the reporting duration (hours between first and
// last report) of every event with at least two reports.
func (ds *Dataset) EventDurations() []float64 {
	var out []float64
	for _, e := range ds.Events {
		if e.Size() >= 2 {
			out = append(out, e.Duration())
		}
	}
	return out
}

// ReportCounts returns the number of events each site reported.
func (ds *Dataset) ReportCounts() []int {
	counts := make([]int, ds.Config.Sites)
	for _, e := range ds.Events {
		for _, inf := range e.Infections {
			counts[inf.Node]++
		}
	}
	return counts
}

// Backbone builds the co-reporting backbone (paper Figure 2): sites that
// reported at least minShared events together are linked, with the
// shared-event count as edge weight.
func (ds *Dataset) Backbone(minShared int) (*graph.Graph, error) {
	if minShared < 1 {
		return nil, fmt.Errorf("gdelt: minShared must be >= 1, got %d", minShared)
	}
	pair := map[[2]int]int{}
	for _, e := range ds.Events {
		nodes := e.Nodes()
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				u, v := nodes[i], nodes[j]
				if u > v {
					u, v = v, u
				}
				pair[[2]int{u, v}]++
			}
		}
	}
	b := graph.NewBuilder(ds.Config.Sites)
	for p, cnt := range pair {
		if cnt < minShared {
			continue
		}
		if err := b.AddEdge(p[0], p[1], float64(cnt)); err != nil {
			return nil, err
		}
		if err := b.AddEdge(p[1], p[0], float64(cnt)); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// SampleEvents returns n events drawn without replacement (all events if
// n exceeds the corpus).
func (ds *Dataset) SampleEvents(n int, rng *xrand.RNG) []*cascade.Cascade {
	if n >= len(ds.Events) {
		return append([]*cascade.Cascade(nil), ds.Events...)
	}
	perm := rng.Perm(len(ds.Events))
	out := make([]*cascade.Cascade, n)
	for i := 0; i < n; i++ {
		out[i] = ds.Events[perm[i]]
	}
	return out
}

// RegionOf returns the region index of a site id.
func (ds *Dataset) RegionOf(site int) int { return ds.Sites[site].Region }
