package gdelt

import (
	"math"
	"sort"
	"testing"

	"viralcast/internal/cascade"
	"viralcast/internal/stats"
	"viralcast/internal/xrand"
)

// smallConfig keeps unit tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Sites = 400
	cfg.Events = 300
	cfg.MeanDegree = 12
	cfg.CrossLinks = 60
	cfg.Seed = 1
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func(mod func(*Config)) Config {
		c := smallConfig()
		mod(&c)
		return c
	}
	bad := []Config{
		mk(func(c *Config) { c.Sites = 0 }),
		mk(func(c *Config) { c.Topics = 0 }),
		mk(func(c *Config) { c.Regions = nil }),
		mk(func(c *Config) { c.Regions[0].Share = 0.9 }), // shares no longer sum to 1
		mk(func(c *Config) { c.Topics = 2 }),             // fewer topics than regions
		mk(func(c *Config) { c.WindowHours = 0 }),
		mk(func(c *Config) { c.MeanDegree = 0 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Sites) != 400 || len(ds.Events) != 300 {
		t.Fatalf("sites=%d events=%d", len(ds.Sites), len(ds.Events))
	}
	if err := cascade.ValidateAll(ds.Events, 400); err != nil {
		t.Fatalf("generated events invalid: %v", err)
	}
	if err := ds.Truth.Validate(); err != nil {
		t.Fatalf("planted truth invalid: %v", err)
	}
	// Region blocks: first 40% of sites are region 0.
	if ds.Sites[0].Region != 0 || ds.Sites[100].Region != 0 {
		t.Error("region assignment not contiguous")
	}
	if ds.Sites[399].Region != 3 {
		t.Errorf("last site region = %d, want 3 (mixed)", ds.Sites[399].Region)
	}
	for _, s := range ds.Sites {
		if s.Name == "" || s.Popularity < 1 {
			t.Fatalf("bad site %+v", s)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("event counts differ")
	}
	for i := range a.Events {
		if a.Events[i].Size() != b.Events[i].Size() {
			t.Fatalf("event %d sizes differ", i)
		}
	}
}

func TestShortLifeCycles(t *testing.T) {
	// Paper §II: most news events are fully reported within ~50 hours.
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	durations := ds.EventDurations()
	if len(durations) < 50 {
		t.Fatalf("too few multi-report events: %d", len(durations))
	}
	within := 0
	for _, d := range durations {
		if d <= 50 {
			within++
		}
	}
	if frac := float64(within) / float64(len(durations)); frac < 0.6 {
		t.Errorf("only %.2f of events finish within 50h; paper says most do", frac)
	}
	// And nothing exceeds the observation window.
	for _, d := range durations {
		if d > ds.Config.WindowHours {
			t.Fatalf("duration %v exceeds window %v", d, ds.Config.WindowHours)
		}
	}
}

func TestRegionalLocality(t *testing.T) {
	// Paper §II: most cascades are local to one region. Measure the mean
	// share of an event's reports coming from its modal region.
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var shares []float64
	for _, e := range ds.Events {
		if e.Size() < 3 {
			continue
		}
		counts := map[int]int{}
		for _, inf := range e.Infections {
			counts[ds.RegionOf(inf.Node)]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		shares = append(shares, float64(best)/float64(e.Size()))
	}
	if len(shares) < 30 {
		t.Fatalf("too few sizable events: %d", len(shares))
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if mean := sum / float64(len(shares)); mean < 0.6 {
		t.Errorf("mean modal-region share %.2f; cascades should be mostly local", mean)
	}
}

func TestMatthewEffect(t *testing.T) {
	// Report counts must be heavy-tailed: a power-law MLE over the tail
	// should give a plausible exponent, and the top site should dominate
	// the median by an order of magnitude.
	cfg := smallConfig()
	cfg.Events = 800
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := ds.ReportCounts()
	var positive []float64
	for _, c := range counts {
		if c > 0 {
			positive = append(positive, float64(c))
		}
	}
	if len(positive) < 100 {
		t.Fatalf("too few active sites: %d", len(positive))
	}
	sort.Float64s(positive)
	median := positive[len(positive)/2]
	top := positive[len(positive)-1]
	if top < 8*median {
		t.Errorf("no heavy tail: top=%v median=%v", top, median)
	}
	alpha, err := stats.PowerLawAlphaMLE(positive, median)
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 1.2 || alpha > 5 {
		t.Errorf("power-law alpha %.2f outside plausible range", alpha)
	}
}

func TestBackbone(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := ds.Backbone(3)
	if err != nil {
		t.Fatal(err)
	}
	if bb.M() == 0 {
		t.Fatal("backbone empty at minShared=3")
	}
	// Symmetric.
	for _, e := range bb.Edges() {
		if w, ok := bb.Weight(e.To, e.From); !ok || w != e.Weight {
			t.Fatalf("backbone asymmetric at (%d,%d)", e.From, e.To)
		}
		if e.Weight < 3 {
			t.Fatalf("backbone edge below threshold: %+v", e)
		}
	}
	// Stricter threshold gives a sparser graph.
	bb10, err := ds.Backbone(10)
	if err != nil {
		t.Fatal(err)
	}
	if bb10.M() > bb.M() {
		t.Error("higher threshold produced denser backbone")
	}
	if _, err := ds.Backbone(0); err == nil {
		t.Error("minShared=0 accepted")
	}
}

func TestBackboneIsRegional(t *testing.T) {
	// Most backbone edges should connect sites of the same region —
	// that is Figure 2's visual message.
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := ds.Backbone(3)
	if err != nil {
		t.Fatal(err)
	}
	same, cross := 0, 0
	for _, e := range bb.Edges() {
		if ds.RegionOf(e.From) == ds.RegionOf(e.To) {
			same++
		} else {
			cross++
		}
	}
	if same <= cross {
		t.Errorf("backbone not regional: %d same vs %d cross", same, cross)
	}
}

func TestSampleEvents(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := ds.SampleEvents(50, xrand.New(9))
	if len(s) != 50 {
		t.Fatalf("sampled %d", len(s))
	}
	seen := map[int]bool{}
	for _, c := range s {
		if seen[c.ID] {
			t.Fatal("sampling with replacement detected")
		}
		seen[c.ID] = true
	}
	all := ds.SampleEvents(10000, xrand.New(9))
	if len(all) != len(ds.Events) {
		t.Fatal("oversized sample must return all events")
	}
}

func TestTruthRegionalStructure(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Region-0 sites concentrate their influence mass inside region 0's
	// topic pool (international hubs may leak a little outside it).
	lo, hi := ds.Config.TopicPool(0)
	if hi <= lo {
		t.Fatalf("degenerate topic pool [%d,%d)", lo, hi)
	}
	inDominates := 0
	total := 0
	for _, s := range ds.Sites[:100] { // region 0
		a := ds.Truth.A.Row(s.ID)
		var in, out float64
		for k, v := range a {
			if k >= lo && k < hi {
				in += v
			} else {
				out += v
			}
		}
		total++
		if in > out {
			inDominates++
		}
	}
	if frac := float64(inDominates) / float64(total); frac < 0.8 {
		t.Errorf("only %.2f of region-0 sites have in-pool influence dominance", frac)
	}
}

func TestTopicPoolPartition(t *testing.T) {
	cfg := DefaultConfig()
	covered := make([]bool, cfg.Topics)
	for ri := range cfg.Regions {
		lo, hi := cfg.TopicPool(ri)
		if lo < 0 || hi > cfg.Topics || hi <= lo {
			t.Fatalf("region %d pool [%d,%d) invalid", ri, lo, hi)
		}
		for k := lo; k < hi; k++ {
			if covered[k] {
				t.Fatalf("topic %d in two pools", k)
			}
			covered[k] = true
		}
	}
	for k, ok := range covered {
		if !ok {
			t.Fatalf("topic %d unowned", k)
		}
	}
	_ = math.Abs // keep math import used
}
