package gdelt

import (
	"bytes"
	"strings"
	"testing"
)

func TestSitesRoundtrip(t *testing.T) {
	sites := []Site{
		{ID: 0, Name: "news00000.us", Region: 0, Popularity: 1.5},
		{ID: 1, Name: "news00001.au", Region: 1, Popularity: 42.25},
	}
	var buf bytes.Buffer
	if err := WriteSites(&buf, sites); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSites(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d sites", len(got))
	}
	for i := range sites {
		if got[i] != sites[i] {
			t.Fatalf("site %d: %+v != %+v", i, got[i], sites[i])
		}
	}
}

func TestWriteSitesRejectsCommaNames(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSites(&buf, []Site{{ID: 0, Name: "a,b", Region: 0, Popularity: 1}})
	if err == nil {
		t.Fatal("comma name accepted")
	}
}

func TestReadSitesErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "x\n",
		"no rows":      "id,name,region,popularity\n",
		"field count":  "id,name,region,popularity\n0,a,0\n",
		"id gap":       "id,name,region,popularity\n1,a,0,1\n",
		"bad region":   "id,name,region,popularity\n0,a,x,1\n",
		"bad pop":      "id,name,region,popularity\n0,a,0,x\n",
		"negative pop": "id,name,region,popularity\n0,a,0,-2\n",
	}
	for name, in := range cases {
		if _, err := ReadSites(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestExportImportRoundtrip(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sitesBuf, eventsBuf bytes.Buffer
	if err := ds.Export(&sitesBuf, &eventsBuf); err != nil {
		t.Fatal(err)
	}
	imported, err := Import(&sitesBuf, &eventsBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(imported.Sites) != len(ds.Sites) || len(imported.Events) != len(ds.Events) {
		t.Fatalf("sizes: %d/%d sites, %d/%d events",
			len(imported.Sites), len(ds.Sites), len(imported.Events), len(ds.Events))
	}
	// Analyses must agree with the original dataset.
	origCounts := ds.ReportCounts()
	impCounts := imported.ReportCounts()
	for i := range origCounts {
		if origCounts[i] != impCounts[i] {
			t.Fatalf("report counts diverge at site %d", i)
		}
	}
	origDur := ds.EventDurations()
	impDur := imported.EventDurations()
	if len(origDur) != len(impDur) {
		t.Fatalf("duration counts: %d vs %d", len(origDur), len(impDur))
	}
	for i := range origDur {
		d := origDur[i] - impDur[i]
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("duration %d diverges: %v vs %v", i, origDur[i], impDur[i])
		}
	}
	// Regions survive for locality analyses.
	for i := range ds.Sites {
		if imported.RegionOf(i) != ds.RegionOf(i) {
			t.Fatalf("region of site %d diverges", i)
		}
	}
	// Backbone identical.
	ob, err := ds.Backbone(3)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := imported.Backbone(3)
	if err != nil {
		t.Fatal(err)
	}
	if ob.M() != ib.M() {
		t.Fatalf("backbone edges: %d vs %d", ob.M(), ib.M())
	}
}

func TestImportValidatesConsistency(t *testing.T) {
	sites := "id,name,region,popularity\n0,a,0,1\n"
	events := "0,5,0\n" // site 5 does not exist
	if _, err := Import(strings.NewReader(sites), strings.NewReader(events)); err == nil {
		t.Fatal("inconsistent import accepted")
	}
}
