package gdelt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"viralcast/internal/cascade"
)

// WriteSites encodes the site table as CSV:
//
//	id,name,region,popularity
//
// Read it back with ReadSites.
func WriteSites(w io.Writer, sites []Site) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "id,name,region,popularity"); err != nil {
		return err
	}
	for _, s := range sites {
		if strings.Contains(s.Name, ",") {
			return fmt.Errorf("gdelt: site name %q contains a comma", s.Name)
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%s\n", s.ID, s.Name, s.Region,
			strconv.FormatFloat(s.Popularity, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSites decodes the format produced by WriteSites. Sites must appear
// in id order starting at 0 (the generator's layout); gaps are an error.
func ReadSites(r io.Reader) ([]Site, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("gdelt: empty sites file")
	}
	if got := strings.TrimSpace(sc.Text()); got != "id,name,region,popularity" {
		return nil, fmt.Errorf("gdelt: bad sites header %q", got)
	}
	var sites []Site
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("gdelt: sites line %d has %d fields", lineNo, len(parts))
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil || id != len(sites) {
			return nil, fmt.Errorf("gdelt: sites line %d: id %q out of order", lineNo, parts[0])
		}
		region, err := strconv.Atoi(parts[2])
		if err != nil || region < 0 {
			return nil, fmt.Errorf("gdelt: sites line %d: bad region %q", lineNo, parts[2])
		}
		pop, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || pop < 0 {
			return nil, fmt.Errorf("gdelt: sites line %d: bad popularity %q", lineNo, parts[3])
		}
		sites = append(sites, Site{ID: id, Name: parts[1], Region: region, Popularity: pop})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("gdelt: sites file has no rows")
	}
	return sites, nil
}

// WriteEvents encodes the event mentions in the cascade text format
// (eventID,site,hours).
func WriteEvents(w io.Writer, events []*cascade.Cascade) error {
	return cascade.Write(w, events)
}

// ReadEvents decodes WriteEvents output.
func ReadEvents(r io.Reader) ([]*cascade.Cascade, error) {
	return cascade.Read(r)
}

// Export writes the dataset's two tables to the given writers (sites
// and events). The planted truth and graph are generator internals and
// are deliberately not exported — a real corpus would not have them.
func (ds *Dataset) Export(sitesW, eventsW io.Writer) error {
	if err := WriteSites(sitesW, ds.Sites); err != nil {
		return err
	}
	return WriteEvents(eventsW, ds.Events)
}

// Import reconstructs an analyzable Dataset from exported tables. The
// Truth and Graph fields stay nil; every analysis in this package
// (EventDurations, ReportCounts, Backbone, SampleEvents, RegionOf) works
// without them, as it would on real data.
func Import(sitesR, eventsR io.Reader) (*Dataset, error) {
	sites, err := ReadSites(sitesR)
	if err != nil {
		return nil, err
	}
	events, err := ReadEvents(eventsR)
	if err != nil {
		return nil, err
	}
	if err := cascade.ValidateAll(events, len(sites)); err != nil {
		return nil, fmt.Errorf("gdelt: imported events inconsistent with sites: %w", err)
	}
	ds := &Dataset{Sites: sites, Events: events}
	ds.Config.Sites = len(sites)
	ds.Config.Events = len(events)
	// Region count for analyses that need ds.Config.Regions (Figure 1's
	// flat cut): reconstruct minimal region descriptors.
	maxRegion := 0
	for _, s := range sites {
		if s.Region > maxRegion {
			maxRegion = s.Region
		}
	}
	ds.Config.Regions = make([]Region, maxRegion+1)
	for i := range ds.Config.Regions {
		ds.Config.Regions[i] = Region{Name: fmt.Sprintf("region%d", i), Share: 1 / float64(maxRegion+1)}
	}
	return ds, nil
}
