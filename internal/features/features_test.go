package features

import (
	"math"
	"testing"

	"viralcast/internal/cascade"
	"viralcast/internal/embed"
)

// model with hand-set influence rows for exact feature arithmetic.
func fixedModel() *embed.Model {
	m := embed.NewModel(4, 2)
	// A rows: node 0 = (1,0), node 1 = (0,1), node 2 = (3,4), node 3 = (0,0)
	m.A.Set(0, 0, 1)
	m.A.Set(1, 1, 1)
	m.A.Set(2, 0, 3)
	m.A.Set(2, 1, 4)
	return m
}

func early(nodes ...int) *cascade.Cascade {
	c := &cascade.Cascade{}
	for i, u := range nodes {
		c.Infections = append(c.Infections, cascade.Infection{Node: u, Time: float64(i)})
	}
	return c
}

func TestExtractExactValues(t *testing.T) {
	m := fixedModel()
	s, err := Extract(m, early(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// diverA = ||(1,0)-(0,1)|| = sqrt(2)
	if math.Abs(s.DiverA-math.Sqrt2) > 1e-12 {
		t.Errorf("DiverA = %v, want sqrt(2)", s.DiverA)
	}
	// sum = (1,1): normA = sqrt(2), maxA = 1
	if math.Abs(s.NormA-math.Sqrt2) > 1e-12 {
		t.Errorf("NormA = %v, want sqrt(2)", s.NormA)
	}
	if s.MaxA != 1 {
		t.Errorf("MaxA = %v, want 1", s.MaxA)
	}
	if s.EarlyCount != 2 {
		t.Errorf("EarlyCount = %v, want 2", s.EarlyCount)
	}
	// Duration 1, 2 adopters -> rate 2.
	if s.EarlyRate != 2 {
		t.Errorf("EarlyRate = %v, want 2", s.EarlyRate)
	}
}

func TestExtractThreeNodes(t *testing.T) {
	m := fixedModel()
	s, err := Extract(m, early(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise distances: d(0,1)=sqrt2, d(0,2)=sqrt(4+16)=sqrt20, d(1,2)=sqrt(9+9)=sqrt18.
	if math.Abs(s.DiverA-math.Sqrt(20)) > 1e-12 {
		t.Errorf("DiverA = %v, want sqrt(20)", s.DiverA)
	}
	// sum = (4,5): normA = sqrt(41), maxA = 5.
	if math.Abs(s.NormA-math.Sqrt(41)) > 1e-12 {
		t.Errorf("NormA = %v, want sqrt(41)", s.NormA)
	}
	if s.MaxA != 5 {
		t.Errorf("MaxA = %v, want 5", s.MaxA)
	}
}

func TestExtractSingleAdopter(t *testing.T) {
	m := fixedModel()
	s, err := Extract(m, early(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.DiverA != 0 {
		t.Errorf("single adopter DiverA = %v, want 0", s.DiverA)
	}
	if s.NormA != 5 { // ||(3,4)||
		t.Errorf("NormA = %v, want 5", s.NormA)
	}
	// Zero duration: rate falls back to the adopter count.
	if s.EarlyRate != 1 {
		t.Errorf("EarlyRate = %v, want 1", s.EarlyRate)
	}
}

func TestExtractErrors(t *testing.T) {
	m := fixedModel()
	if _, err := Extract(m, nil); err == nil {
		t.Error("nil prefix accepted")
	}
	if _, err := Extract(m, &cascade.Cascade{}); err == nil {
		t.Error("empty prefix accepted")
	}
	if _, err := Extract(m, early(9)); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestVectorAndSelect(t *testing.T) {
	s := Set{DiverA: 1, NormA: 2, MaxA: 3, EarlyCount: 4, EarlyRate: 5}
	v := s.Vector()
	if len(v) != len(Names) {
		t.Fatalf("Vector length %d != Names length %d", len(v), len(Names))
	}
	for i, want := range []float64{1, 2, 3, 4, 5} {
		if v[i] != want {
			t.Fatalf("Vector = %v", v)
		}
	}
	sel, err := s.Select([]string{"maxA", "diverA"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0] != 3 || sel[1] != 1 {
		t.Fatalf("Select = %v", sel)
	}
	if _, err := s.Select([]string{"bogus"}); err == nil {
		t.Error("unknown feature accepted")
	}
}

func TestExtractAll(t *testing.T) {
	m := fixedModel()
	cs := []*cascade.Cascade{
		{Infections: []cascade.Infection{{Node: 0, Time: 0}, {Node: 1, Time: 1}, {Node: 2, Time: 5}}},
		{Infections: []cascade.Infection{{Node: 2, Time: 10}}}, // starts after cutoff
	}
	sets, sizes, err := ExtractAll(m, cs, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sizes) != 1 {
		t.Fatalf("got %d sets, %d sizes; want 1 each", len(sets), len(sizes))
	}
	if sizes[0] != 3 {
		t.Errorf("target size = %d, want full cascade size 3", sizes[0])
	}
	if sets[0].EarlyCount != 2 {
		t.Errorf("early count = %v, want 2 (cutoff at t=2)", sets[0].EarlyCount)
	}
}
