package features

import (
	"fmt"

	"viralcast/internal/cascade"
	"viralcast/internal/graph"
)

// TopoSet holds the topology-dependent early-adopter features of the
// paper's first baseline family (§V, its references [20] and [21]):
// feature-based cascade prediction that requires the propagation network
// — early-adopter count, the surface of uninfected neighbors, and the
// community spread of the early adopters. The paper's point is that
// these features are unavailable when the topology is hidden (as in
// GDELT), which is exactly what the embedding features repair; this
// implementation lets the repository quantify that comparison on
// synthetic workloads where the topology *is* known.
type TopoSet struct {
	// EarlyCount is the number of early adopters.
	EarlyCount float64
	// Frontier is the number of distinct uninfected out-neighbors of the
	// early adopters — the cascade's growth surface.
	Frontier float64
	// FrontierPerAdopter normalizes Frontier by EarlyCount.
	FrontierPerAdopter float64
	// Communities is the number of distinct communities containing at
	// least one early adopter.
	Communities float64
	// MaxCommunityShare is the largest fraction of early adopters inside
	// a single community (1 = fully local so far).
	MaxCommunityShare float64
}

// TopoNames lists the feature names in TopoVector order.
var TopoNames = []string{"earlyCount", "frontier", "frontierPerAdopter", "communities", "maxCommunityShare"}

// Vector returns the features in TopoNames order.
func (s TopoSet) Vector() []float64 {
	return []float64{s.EarlyCount, s.Frontier, s.FrontierPerAdopter, s.Communities, s.MaxCommunityShare}
}

// ExtractTopo computes the topology features of an early-adopter prefix
// over the known propagation graph and node-community membership.
func ExtractTopo(g *graph.Graph, membership []int, early *cascade.Cascade) (TopoSet, error) {
	if early == nil || early.Size() == 0 {
		return TopoSet{}, fmt.Errorf("features: empty early-adopter prefix")
	}
	if len(membership) != g.N() {
		return TopoSet{}, fmt.Errorf("features: membership length %d != graph nodes %d", len(membership), g.N())
	}
	infected := make(map[int]bool, early.Size())
	for _, inf := range early.Infections {
		if inf.Node < 0 || inf.Node >= g.N() {
			return TopoSet{}, fmt.Errorf("features: node %d out of range [0,%d)", inf.Node, g.N())
		}
		infected[inf.Node] = true
	}
	frontier := map[int]bool{}
	commCount := map[int]int{}
	for u := range infected {
		commCount[membership[u]]++
		ts, _ := g.Neighbors(u)
		for _, v := range ts {
			if !infected[v] {
				frontier[v] = true
			}
		}
	}
	maxShare := 0.0
	for _, c := range commCount {
		if share := float64(c) / float64(early.Size()); share > maxShare {
			maxShare = share
		}
	}
	n := float64(early.Size())
	return TopoSet{
		EarlyCount:         n,
		Frontier:           float64(len(frontier)),
		FrontierPerAdopter: float64(len(frontier)) / n,
		Communities:        float64(len(commCount)),
		MaxCommunityShare:  maxShare,
	}, nil
}

// ExtractTopoAll computes topology features for every cascade prefix cut
// at earlyCutoff, returning sets aligned with the final sizes.
func ExtractTopoAll(g *graph.Graph, membership []int, cs []*cascade.Cascade, earlyCutoff float64) ([]TopoSet, []int, error) {
	var sets []TopoSet
	var sizes []int
	for _, c := range cs {
		early := c.Prefix(earlyCutoff)
		if early.Size() == 0 {
			continue
		}
		s, err := ExtractTopo(g, membership, early)
		if err != nil {
			return nil, nil, err
		}
		sets = append(sets, s)
		sizes = append(sizes, c.Size())
	}
	return sets, sizes, nil
}
