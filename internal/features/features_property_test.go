package features

import (
	"math"
	"testing"
	"testing/quick"

	"viralcast/internal/cascade"
	"viralcast/internal/embed"
	"viralcast/internal/xrand"
)

// Property: the influence features are invariant to the order of early
// adopters (they are set functions of the adopter identities), and
// monotone under adding adopters for normA.
func TestFeaturesSetInvarianceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		const n, k = 20, 3
		m := embed.NewModel(n, k)
		m.InitUniform(rng, 0.1, 1.0)
		sz := 2 + rng.Intn(8)
		perm := rng.Perm(n)[:sz]
		base := &cascade.Cascade{}
		for i, u := range perm {
			base.Infections = append(base.Infections, cascade.Infection{Node: u, Time: float64(i)})
		}
		s1, err := Extract(m, base)
		if err != nil {
			return false
		}
		// Shuffle adopter order (times permuted with nodes): set features
		// must not change.
		shuffled := &cascade.Cascade{}
		order := rng.Perm(sz)
		for i, j := range order {
			shuffled.Infections = append(shuffled.Infections, cascade.Infection{
				Node: base.Infections[j].Node, Time: float64(i),
			})
		}
		s2, err := Extract(m, shuffled)
		if err != nil {
			return false
		}
		tol := 1e-9
		if math.Abs(s1.DiverA-s2.DiverA) > tol ||
			math.Abs(s1.NormA-s2.NormA) > tol ||
			math.Abs(s1.MaxA-s2.MaxA) > tol {
			return false
		}
		// Adding one more adopter never decreases maxA (component sums of
		// non-negative vectors only grow).
		if sz < n {
			extra := -1
			for _, u := range rng.Perm(n) {
				found := false
				for _, inf := range base.Infections {
					if inf.Node == u {
						found = true
						break
					}
				}
				if !found {
					extra = u
					break
				}
			}
			if extra >= 0 {
				bigger := &cascade.Cascade{Infections: append(
					append([]cascade.Infection{}, base.Infections...),
					cascade.Infection{Node: extra, Time: float64(sz)})}
				s3, err := Extract(m, bigger)
				if err != nil {
					return false
				}
				if s3.MaxA < s1.MaxA-tol || s3.DiverA < s1.DiverA-tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: diverA is bounded by twice the largest influence norm among
// early adopters (triangle inequality bound).
func TestDiverABoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		const n, k = 15, 2
		m := embed.NewModel(n, k)
		m.InitUniform(rng, 0, 2)
		sz := 2 + rng.Intn(6)
		c := &cascade.Cascade{}
		for i, u := range rng.Perm(n)[:sz] {
			c.Infections = append(c.Infections, cascade.Infection{Node: u, Time: float64(i)})
		}
		s, err := Extract(m, c)
		if err != nil {
			return false
		}
		var maxNorm float64
		for _, inf := range c.Infections {
			row := m.A.Row(inf.Node)
			var sq float64
			for _, v := range row {
				sq += v * v
			}
			if nrm := math.Sqrt(sq); nrm > maxNorm {
				maxNorm = nrm
			}
		}
		return s.DiverA <= 2*maxNorm+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
