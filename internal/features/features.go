// Package features extracts the early-adopter features the paper feeds
// to the cascade-virality classifier (§V): given the inferred influence
// embeddings of the nodes that reported an event early, it computes
//
//	diverA — the maximum Euclidean distance between any pair of early
//	         adopters' influence vectors (Eq. 17): high divergence means
//	         the cascade already spans several topics;
//	normA  — the Euclidean norm of the summed influence vectors (Eq. 18);
//	maxA   — the largest component of the summed influence vector
//	         (Eq. 19): the strength of the single hottest topic.
//
// Two model-free baseline features (early-adopter count and arrival rate)
// are included for the feature-ablation experiments.
package features

import (
	"fmt"
	"sync"

	"viralcast/internal/cascade"
	"viralcast/internal/embed"
	"viralcast/internal/vecmath"
)

// Set is one cascade's extracted feature values.
type Set struct {
	DiverA     float64
	NormA      float64
	MaxA       float64
	EarlyCount float64 // number of early adopters (baseline feature)
	EarlyRate  float64 // adopters per unit time within the early window
}

// Names lists the feature names in Vector order.
var Names = []string{"diverA", "normA", "maxA", "earlyCount", "earlyRate"}

// Vector returns the features in Names order.
func (s Set) Vector() []float64 {
	return []float64{s.DiverA, s.NormA, s.MaxA, s.EarlyCount, s.EarlyRate}
}

// Select returns the subset of the feature vector named by keep, in keep
// order. Unknown names are an error.
func (s Set) Select(keep []string) ([]float64, error) {
	return s.SelectAppend(make([]float64, 0, len(keep)), keep)
}

// SelectAppend is Select appending into dst, for serving hot paths that
// reuse a scratch buffer across requests instead of allocating one per
// prediction.
func (s Set) SelectAppend(dst []float64, keep []string) ([]float64, error) {
	// A fixed-size array keeps the full vector on the stack; Vector()
	// would allocate on every prediction.
	full := [...]float64{s.DiverA, s.NormA, s.MaxA, s.EarlyCount, s.EarlyRate}
	for _, name := range keep {
		found := false
		for i, n := range Names {
			if n == name {
				dst = append(dst, full[i])
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("features: unknown feature %q", name)
		}
	}
	return dst, nil
}

// sumPool recycles the K-sized accumulation scratch across Extract
// calls; the serving predict path runs one Extract per request, and the
// scratch never escapes into the returned Set (which holds scalars
// only).
var sumPool = sync.Pool{New: func() any { s := make([]float64, 0, 64); return &s }}

// Extract computes the feature set from the early-adopter prefix of a
// cascade under the fitted model. The prefix must be non-empty; use
// Cascade.Prefix to cut at the early-observation horizon.
func Extract(m *embed.Model, early *cascade.Cascade) (Set, error) {
	sp := sumPool.Get().(*[]float64)
	defer func() { sumPool.Put(sp) }()
	sum := *sp
	if cap(sum) < m.K() {
		sum = make([]float64, m.K())
		*sp = sum
	}
	return extractWith(m, early, sum)
}

// extractWith is Extract against a caller-provided K-capacity scratch;
// the batch path shares one scratch across a whole block instead of a
// pool round-trip per cascade. Both paths run the identical sequence of
// float operations, which is what makes batched and single-request
// features bit-identical.
func extractWith(m *embed.Model, early *cascade.Cascade, scratch []float64) (Set, error) {
	if early == nil || early.Size() == 0 {
		return Set{}, fmt.Errorf("features: empty early-adopter prefix")
	}
	n := m.N()
	k := m.K()
	sum := scratch[:k]
	vecmath.Fill(sum, 0)
	var diver float64
	infs := early.Infections
	for i, inf := range infs {
		if inf.Node < 0 || inf.Node >= n {
			return Set{}, fmt.Errorf("features: node %d out of range [0,%d)", inf.Node, n)
		}
		ai := m.A.Row(inf.Node)
		vecmath.Add(ai, sum)
		// diverA considers ordered pairs (t_i < t_j); the max over ordered
		// pairs equals the max over all pairs, computed here pairwise.
		for j := 0; j < i; j++ {
			d := vecmath.Dist2(m.A.Row(infs[j].Node), ai)
			if d > diver {
				diver = d
			}
		}
	}
	maxA, _ := vecmath.Max(sum)
	dur := early.Duration()
	rate := float64(early.Size())
	if dur > 0 {
		rate = float64(early.Size()) / dur
	}
	return Set{
		DiverA:     diver,
		NormA:      vecmath.Norm2(sum),
		MaxA:       maxA,
		EarlyCount: float64(early.Size()),
		EarlyRate:  rate,
	}, nil
}

// ExtractAll computes features for every cascade prefix cut at earlyFrac
// of the observation window (the paper uses the first 2/7 of the window
// for SBM experiments and the first 5 hours for GDELT). It returns the
// feature sets alongside the final sizes (the prediction target).
func ExtractAll(m *embed.Model, cs []*cascade.Cascade, earlyCutoff float64) ([]Set, []int, error) {
	var sets []Set
	var sizes []int
	for _, c := range cs {
		early := c.Prefix(earlyCutoff)
		if early.Size() == 0 {
			continue // cascade starts after the early window; unusable
		}
		s, err := Extract(m, early)
		if err != nil {
			return nil, nil, err
		}
		sets = append(sets, s)
		sizes = append(sizes, c.Size())
	}
	return sets, sizes, nil
}
