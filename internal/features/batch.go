package features

import (
	"fmt"
	"sync"

	"viralcast/internal/cascade"
	"viralcast/internal/embed"
	"viralcast/internal/vecmath"
)

// Block is a row-major batch of feature vectors: row i of a
// Rows x Stride block occupies Data[i*Stride : (i+1)*Stride]. Keeping a
// whole batch in one contiguous allocation is what lets standardization
// and the classifier's inner products run as long-vector kernels
// (svm.Standardizer.ApplyBlock, vecmath.Gemv) instead of one short
// K-length call per cascade.
type Block struct {
	Data   []float64
	Rows   int
	Stride int
}

// Row returns row i, aliasing the block storage.
func (b *Block) Row(i int) []float64 {
	return b.Data[i*b.Stride : (i+1)*b.Stride]
}

// blockPool recycles batch blocks across requests; a serving daemon
// runs one block per batched request and the block never escapes the
// request (responses copy scalars out).
var blockPool = sync.Pool{New: func() any { return new(Block) }}

// GetBlock returns a zeroed rows x stride block, reusing pooled storage
// when a previous batch left one big enough. Return it with PutBlock.
func GetBlock(rows, stride int) *Block {
	b := blockPool.Get().(*Block)
	need := rows * stride
	if cap(b.Data) < need {
		b.Data = make([]float64, need)
	}
	b.Data = b.Data[:need]
	vecmath.Fill(b.Data, 0)
	b.Rows, b.Stride = rows, stride
	return b
}

// PutBlock returns a block to the pool.
func PutBlock(b *Block) { blockPool.Put(b) }

// ExtractBatch extracts the keep-selected features of every early
// prefix into the rows of blk: row i holds early[i]'s features in keep
// order. A nil early[i] is skipped (its row stays zero and its error
// slot is left untouched — the caller marks why it was excluded); a
// failed extraction zeroes its row and records the error in errs[i]
// without failing the batch. The per-cascade math is the identical
// operation sequence Extract runs, so a batch row equals the
// single-call feature vector bit for bit.
func ExtractBatch(m *embed.Model, early []*cascade.Cascade, keep []string, blk *Block, errs []error) {
	if len(early) > blk.Rows || len(early) > len(errs) {
		panic(fmt.Sprintf("features: ExtractBatch %d cascades into %d rows / %d error slots",
			len(early), blk.Rows, len(errs)))
	}
	if len(keep) > blk.Stride {
		panic(fmt.Sprintf("features: ExtractBatch %d features into stride %d", len(keep), blk.Stride))
	}
	sp := sumPool.Get().(*[]float64)
	defer func() { sumPool.Put(sp) }()
	sum := *sp
	if cap(sum) < m.K() {
		sum = make([]float64, m.K())
		*sp = sum
	}
	for i, c := range early {
		if c == nil {
			continue
		}
		s, err := extractWith(m, c, sum)
		if err != nil {
			errs[i] = err
			continue
		}
		// Append into the block row in place: the three-index slice caps
		// the destination at this row, so a keep-order append writes the
		// selected features exactly where Gemv will read them.
		at := i * blk.Stride
		if _, err := s.SelectAppend(blk.Data[at:at:at+len(keep)], keep); err != nil {
			errs[i] = err
		}
	}
}
