package features

import (
	"testing"

	"viralcast/internal/cascade"
	"viralcast/internal/graph"
)

// pathGraph builds 0 -> 1 -> 2 -> 3 with reverse edges.
func pathGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(e[1], e[0], 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestExtractTopoExactValues(t *testing.T) {
	g := pathGraph(t)
	membership := []int{0, 0, 1, 1}
	early := &cascade.Cascade{Infections: []cascade.Infection{
		{Node: 0, Time: 0}, {Node: 1, Time: 1},
	}}
	s, err := ExtractTopo(g, membership, early)
	if err != nil {
		t.Fatal(err)
	}
	if s.EarlyCount != 2 {
		t.Errorf("EarlyCount = %v", s.EarlyCount)
	}
	// Uninfected neighbors of {0, 1}: node 2 only.
	if s.Frontier != 1 {
		t.Errorf("Frontier = %v, want 1", s.Frontier)
	}
	if s.FrontierPerAdopter != 0.5 {
		t.Errorf("FrontierPerAdopter = %v", s.FrontierPerAdopter)
	}
	// Both adopters in community 0.
	if s.Communities != 1 || s.MaxCommunityShare != 1 {
		t.Errorf("Communities = %v, MaxCommunityShare = %v", s.Communities, s.MaxCommunityShare)
	}
}

func TestExtractTopoCrossCommunity(t *testing.T) {
	g := pathGraph(t)
	membership := []int{0, 0, 1, 1}
	early := &cascade.Cascade{Infections: []cascade.Infection{
		{Node: 1, Time: 0}, {Node: 2, Time: 1},
	}}
	s, err := ExtractTopo(g, membership, early)
	if err != nil {
		t.Fatal(err)
	}
	if s.Communities != 2 {
		t.Errorf("Communities = %v, want 2", s.Communities)
	}
	if s.MaxCommunityShare != 0.5 {
		t.Errorf("MaxCommunityShare = %v, want 0.5", s.MaxCommunityShare)
	}
	// Frontier: neighbors of {1,2} not infected = {0, 3}.
	if s.Frontier != 2 {
		t.Errorf("Frontier = %v, want 2", s.Frontier)
	}
}

func TestExtractTopoErrors(t *testing.T) {
	g := pathGraph(t)
	if _, err := ExtractTopo(g, []int{0, 0, 0, 0}, nil); err == nil {
		t.Error("nil prefix accepted")
	}
	if _, err := ExtractTopo(g, []int{0}, &cascade.Cascade{
		Infections: []cascade.Infection{{Node: 0, Time: 0}},
	}); err == nil {
		t.Error("wrong membership length accepted")
	}
	if _, err := ExtractTopo(g, []int{0, 0, 0, 0}, &cascade.Cascade{
		Infections: []cascade.Infection{{Node: 9, Time: 0}},
	}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestExtractTopoAll(t *testing.T) {
	g := pathGraph(t)
	membership := []int{0, 0, 1, 1}
	cs := []*cascade.Cascade{
		{Infections: []cascade.Infection{{Node: 0, Time: 0}, {Node: 1, Time: 3}}},
		{Infections: []cascade.Infection{{Node: 2, Time: 10}}}, // after cutoff
	}
	sets, sizes, err := ExtractTopoAll(g, membership, cs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sizes) != 1 {
		t.Fatalf("got %d sets", len(sets))
	}
	if sizes[0] != 2 {
		t.Errorf("target size = %d", sizes[0])
	}
	if sets[0].EarlyCount != 1 {
		t.Errorf("early count = %v (cutoff 1.0)", sets[0].EarlyCount)
	}
	if len(TopoNames) != len(sets[0].Vector()) {
		t.Error("TopoNames and Vector out of sync")
	}
}
