// Package slpa implements the Speaker-Listener Label Propagation
// Algorithm (Xie, Szymanski & Liu, ICDMW 2011), the community detection
// method the paper runs on the frequent co-occurrence graph (§IV-B).
//
// Each node keeps a memory of labels. In every iteration each listener
// node collects one label from each neighbor (the speaker samples a label
// from its own memory, weighted by frequency; neighbors are weighted by
// edge weight) and stores the most popular received label. After T
// iterations, each node's community is the most frequent label in its
// memory — a disjoint partition, which is what the parallel inference
// algorithm needs (the paper relies on communities that do not intersect
// so that gradient updates touch disjoint matrix rows).
package slpa

import (
	"fmt"
	"sort"

	"viralcast/internal/graph"
	"viralcast/internal/xrand"
)

// Options configures SLPA.
type Options struct {
	// Iterations is the number of propagation rounds T (paper default
	// regimes use 20-100; we default to 50 when 0).
	Iterations int
	// MinCommunitySize merges communities smaller than this into their
	// most-connected neighbor community (0 disables). Tiny fragments are
	// useless as parallel work units.
	MinCommunitySize int
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 50
	}
	return o
}

// Partition holds a disjoint community assignment.
type Partition struct {
	// Membership maps node id -> community id in [0, NumCommunities).
	Membership []int
	// Communities lists member nodes per community id, each sorted.
	Communities [][]int
}

// NumCommunities returns the number of communities.
func (p *Partition) NumCommunities() int { return len(p.Communities) }

// Validate checks that the partition is a disjoint cover of [0, n).
func (p *Partition) Validate(n int) error {
	if len(p.Membership) != n {
		return fmt.Errorf("slpa: membership length %d != n %d", len(p.Membership), n)
	}
	seen := make([]bool, n)
	for cid, members := range p.Communities {
		for _, u := range members {
			if u < 0 || u >= n {
				return fmt.Errorf("slpa: node %d out of range", u)
			}
			if seen[u] {
				return fmt.Errorf("slpa: node %d in two communities", u)
			}
			seen[u] = true
			if p.Membership[u] != cid {
				return fmt.Errorf("slpa: membership[%d]=%d but listed in community %d",
					u, p.Membership[u], cid)
			}
		}
	}
	for u, ok := range seen {
		if !ok {
			return fmt.Errorf("slpa: node %d not covered", u)
		}
	}
	return nil
}

// FromMembership builds a Partition from a membership slice, renumbering
// community ids densely in order of first appearance.
func FromMembership(membership []int) *Partition {
	remap := map[int]int{}
	p := &Partition{Membership: make([]int, len(membership))}
	for u, raw := range membership {
		id, ok := remap[raw]
		if !ok {
			id = len(p.Communities)
			remap[raw] = id
			p.Communities = append(p.Communities, nil)
		}
		p.Membership[u] = id
		p.Communities[id] = append(p.Communities[id], u)
	}
	for _, members := range p.Communities {
		sort.Ints(members)
	}
	return p
}

// Detect runs SLPA on g (interpreted as undirected: both in- and
// out-neighbors speak to a listener) and returns a disjoint partition.
func Detect(g *graph.Graph, opt Options, rng *xrand.RNG) *Partition {
	opt = opt.withDefaults()
	n := g.N()
	und := g.Undirected()
	// memory[u] maps label -> count. Initially every node holds itself.
	memory := make([]map[int]int, n)
	memSize := make([]int, n)
	for u := range memory {
		memory[u] = map[int]int{u: 1}
		memSize[u] = 1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for it := 0; it < opt.Iterations; it++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, listener := range order {
			ts, ws := und.Neighbors(listener)
			if len(ts) == 0 {
				continue
			}
			// Each neighbor speaks one label sampled from its memory;
			// the listener adopts the label with the largest total edge
			// weight among those spoken.
			received := map[int]float64{}
			for i, speaker := range ts {
				label := speak(memory[speaker], memSize[speaker], rng)
				received[label] += ws[i]
			}
			best, bestW := -1, -1.0
			for label, w := range received {
				if w > bestW || (w == bestW && label < best) {
					best, bestW = label, w
				}
			}
			memory[listener][best]++
			memSize[listener]++
		}
	}
	// Post-processing: each node takes its most frequent remembered label.
	membership := make([]int, n)
	for u := range membership {
		bestLabel, bestCount := -1, -1
		for label, cnt := range memory[u] {
			if cnt > bestCount || (cnt == bestCount && label < bestLabel) {
				bestLabel, bestCount = label, cnt
			}
		}
		membership[u] = bestLabel
	}
	p := FromMembership(membership)
	if opt.MinCommunitySize > 1 {
		p = mergeSmall(und, p, opt.MinCommunitySize)
	}
	return p
}

// speak samples a label from the speaker's memory proportionally to its
// stored frequency.
func speak(mem map[int]int, total int, rng *xrand.RNG) int {
	target := rng.Intn(total)
	// Map iteration order is random in Go; for determinism we walk labels
	// in sorted order. Memories are small (<= iterations), so this is fine.
	labels := make([]int, 0, len(mem))
	for l := range mem {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	acc := 0
	for _, l := range labels {
		acc += mem[l]
		if target < acc {
			return l
		}
	}
	return labels[len(labels)-1]
}

// mergeSmall folds communities below minSize into the neighboring
// community they connect to with the greatest total weight; isolated
// small communities merge into the largest community.
func mergeSmall(und *graph.Graph, p *Partition, minSize int) *Partition {
	membership := append([]int(nil), p.Membership...)
	for {
		counts := map[int]int{}
		for _, c := range membership {
			counts[c]++
		}
		// Find the smallest community below threshold (ties: lowest id).
		smallID, smallN := -1, minSize
		for id, n := range counts {
			if n < smallN || (n == smallN && smallID != -1 && id < smallID) {
				smallID, smallN = id, n
			}
		}
		if smallID == -1 {
			break
		}
		// Total connection weight to every other community.
		weightTo := map[int]float64{}
		for u, c := range membership {
			if c != smallID {
				continue
			}
			ts, ws := und.Neighbors(u)
			for i, v := range ts {
				if membership[v] != smallID {
					weightTo[membership[v]] += ws[i]
				}
			}
		}
		target, bestW := -1, -1.0
		for id, w := range weightTo {
			if w > bestW || (w == bestW && id < target) {
				target, bestW = id, w
			}
		}
		if target == -1 {
			// Isolated: merge into the largest other community, if any.
			bestN := -1
			for id, n := range counts {
				if id != smallID && (n > bestN || (n == bestN && id < target)) {
					target, bestN = id, n
				}
			}
			if target == -1 {
				break // only one community left
			}
		}
		for u, c := range membership {
			if c == smallID {
				membership[u] = target
			}
		}
	}
	return FromMembership(membership)
}

// Modularity computes the weighted Newman modularity of the partition on
// graph g (treated as undirected). Used in tests and diagnostics to check
// that detected communities are meaningfully dense.
func Modularity(g *graph.Graph, p *Partition) float64 {
	und := g.Undirected()
	m2 := und.TotalWeight() // sum over directed arcs = 2m for undirected
	if m2 == 0 {
		return 0
	}
	// Standard per-community form: Q = sum_c [ w_in(c)/m2 - (deg(c)/m2)^2 ]
	// where w_in(c) counts directed arcs inside c (each undirected edge
	// twice, matching m2 = 2m) and deg(c) is the total weighted degree.
	nc := p.NumCommunities()
	win := make([]float64, nc)
	deg := make([]float64, nc)
	for u := 0; u < und.N(); u++ {
		cu := p.Membership[u]
		ts, ws := und.Neighbors(u)
		for i, v := range ts {
			deg[cu] += ws[i]
			if p.Membership[v] == cu {
				win[cu] += ws[i]
			}
		}
	}
	var q float64
	for c := 0; c < nc; c++ {
		q += win[c]/m2 - (deg[c]/m2)*(deg[c]/m2)
	}
	return q
}
