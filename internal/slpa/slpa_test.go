package slpa

import (
	"testing"
	"testing/quick"

	"viralcast/internal/graph"
	"viralcast/internal/sbm"
	"viralcast/internal/xrand"
)

func TestFromMembership(t *testing.T) {
	p := FromMembership([]int{5, 5, 9, 5, 9})
	if p.NumCommunities() != 2 {
		t.Fatalf("NumCommunities = %d", p.NumCommunities())
	}
	if err := p.Validate(5); err != nil {
		t.Fatal(err)
	}
	// Dense renumbering in first-appearance order: label 5 -> 0, 9 -> 1.
	if p.Membership[0] != 0 || p.Membership[2] != 1 {
		t.Fatalf("Membership = %v", p.Membership)
	}
	if len(p.Communities[0]) != 3 || len(p.Communities[1]) != 2 {
		t.Fatalf("Communities = %v", p.Communities)
	}
	// Members sorted.
	for _, members := range p.Communities {
		for i := 1; i < len(members); i++ {
			if members[i-1] >= members[i] {
				t.Fatalf("community not sorted: %v", members)
			}
		}
	}
}

func TestValidateCatchesBadPartitions(t *testing.T) {
	p := FromMembership([]int{0, 0, 1})
	if err := p.Validate(2); err == nil {
		t.Error("wrong n accepted")
	}
	broken := &Partition{
		Membership:  []int{0, 0},
		Communities: [][]int{{0}},
	}
	if err := broken.Validate(2); err == nil {
		t.Error("uncovered node accepted")
	}
	dup := &Partition{
		Membership:  []int{0, 0},
		Communities: [][]int{{0, 0, 1}},
	}
	if err := dup.Validate(2); err == nil {
		t.Error("duplicated node accepted")
	}
}

// twoCliques returns two K5s joined by a single weak edge.
func twoCliques(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10)
	addClique := func(lo, hi int) {
		for u := lo; u < hi; u++ {
			for v := u + 1; v < hi; v++ {
				if err := b.AddEdge(u, v, 1); err != nil {
					t.Fatal(err)
				}
				if err := b.AddEdge(v, u, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	addClique(0, 5)
	addClique(5, 10)
	if err := b.AddEdge(4, 5, 0.05); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestDetectTwoCliques(t *testing.T) {
	g := twoCliques(t)
	p := Detect(g, Options{Iterations: 60}, xrand.New(1))
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
	// Nodes 0-4 must share a community, 5-9 another, and they must differ.
	for u := 1; u < 5; u++ {
		if p.Membership[u] != p.Membership[0] {
			t.Fatalf("clique 1 split: %v", p.Membership)
		}
	}
	for u := 6; u < 10; u++ {
		if p.Membership[u] != p.Membership[5] {
			t.Fatalf("clique 2 split: %v", p.Membership)
		}
	}
	if p.Membership[0] == p.Membership[5] {
		t.Fatalf("cliques merged: %v", p.Membership)
	}
}

func TestDetectSBMRecovery(t *testing.T) {
	// SLPA on a well-separated SBM should recover the planted blocks for
	// the vast majority of nodes.
	params := sbm.Params{N: 200, BlockSize: 40, Alpha: 0.4, Beta: 0.002}
	g, planted, err := sbm.Generate(params, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	p := Detect(g, Options{Iterations: 40, MinCommunitySize: 5}, xrand.New(3))
	if err := p.Validate(200); err != nil {
		t.Fatal(err)
	}
	// Compare by majority vote: each detected community's planted-purity.
	agree := 0
	for _, members := range p.Communities {
		counts := map[int]int{}
		for _, u := range members {
			counts[planted[u]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		agree += best
	}
	purity := float64(agree) / 200
	if purity < 0.9 {
		t.Errorf("SLPA purity %.3f < 0.9 on well-separated SBM", purity)
	}
	if p.NumCommunities() < 3 {
		t.Errorf("SLPA found only %d communities on a 5-block SBM", p.NumCommunities())
	}
}

func TestDetectIsolatedNodes(t *testing.T) {
	g := graph.NewBuilder(4).Build() // no edges at all
	p := Detect(g, Options{Iterations: 10}, xrand.New(4))
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	if p.NumCommunities() != 4 {
		t.Fatalf("isolated nodes must stay singleton communities, got %d", p.NumCommunities())
	}
}

func TestMinCommunitySizeMerging(t *testing.T) {
	g := twoCliques(t)
	// A huge minimum forces everything into one community.
	p := Detect(g, Options{Iterations: 30, MinCommunitySize: 11}, xrand.New(5))
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
	if p.NumCommunities() != 1 {
		t.Fatalf("expected full merge, got %d communities", p.NumCommunities())
	}
}

func TestDetectDeterministic(t *testing.T) {
	g := twoCliques(t)
	p1 := Detect(g, Options{Iterations: 30}, xrand.New(7))
	p2 := Detect(g, Options{Iterations: 30}, xrand.New(7))
	for u := range p1.Membership {
		if p1.Membership[u] != p2.Membership[u] {
			t.Fatalf("same seed, different partitions at node %d", u)
		}
	}
}

func TestModularity(t *testing.T) {
	g := twoCliques(t)
	good := FromMembership([]int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1})
	bad := FromMembership([]int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	one := FromMembership(make([]int, 10))
	qg, qb, qo := Modularity(g, good), Modularity(g, bad), Modularity(g, one)
	if qg <= qb {
		t.Errorf("planted partition modularity %v <= scrambled %v", qg, qb)
	}
	if qg <= qo {
		t.Errorf("planted partition modularity %v <= single community %v", qg, qo)
	}
	if qg < 0.3 {
		t.Errorf("two-clique modularity %v unexpectedly low", qg)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	p := FromMembership([]int{0, 0, 0})
	if Modularity(g, p) != 0 {
		t.Error("modularity of empty graph must be 0")
	}
}

// Property: FromMembership output always validates and preserves
// co-membership relations.
func TestFromMembershipProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(30)
		membership := make([]int, n)
		for i := range membership {
			membership[i] = rng.Intn(6) * 10
		}
		p := FromMembership(membership)
		if p.Validate(n) != nil {
			return false
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := membership[u] == membership[v]
				got := p.Membership[u] == p.Membership[v]
				if same != got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDetectSBM(b *testing.B) {
	params := sbm.Params{N: 500, BlockSize: 40, Alpha: 0.3, Beta: 0.005}
	g, _, err := sbm.Generate(params, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Detect(g, Options{Iterations: 20}, xrand.New(uint64(i)))
	}
}
