package slpa

import (
	"fmt"
	"sort"

	"viralcast/internal/graph"
	"viralcast/internal/xrand"
)

// Cover is an overlapping community assignment — the full SLPA output
// (the original algorithm was designed to uncover *overlapping*
// communities; the paper's parallel algorithm consumes the disjoint
// reduction from Detect, but the overlapping form is useful for
// analyzing bridge sites that belong to several regional communities).
type Cover struct {
	// Memberships[u] lists the community ids node u belongs to, sorted.
	Memberships [][]int
	// Communities[c] lists the member nodes of community c, sorted.
	Communities [][]int
}

// NumCommunities returns the number of communities in the cover.
func (c *Cover) NumCommunities() int { return len(c.Communities) }

// Validate checks structural consistency of the cover for n nodes:
// every node has at least one community, memberships and community
// lists agree, and ids are in range.
func (c *Cover) Validate(n int) error {
	if len(c.Memberships) != n {
		return fmt.Errorf("slpa: cover has %d membership rows, want %d", len(c.Memberships), n)
	}
	inComm := make([]map[int]bool, len(c.Communities))
	for cid, members := range c.Communities {
		inComm[cid] = make(map[int]bool, len(members))
		for _, u := range members {
			if u < 0 || u >= n {
				return fmt.Errorf("slpa: community %d contains out-of-range node %d", cid, u)
			}
			if inComm[cid][u] {
				return fmt.Errorf("slpa: community %d lists node %d twice", cid, u)
			}
			inComm[cid][u] = true
		}
	}
	for u, comms := range c.Memberships {
		if len(comms) == 0 {
			return fmt.Errorf("slpa: node %d has no community", u)
		}
		for _, cid := range comms {
			if cid < 0 || cid >= len(c.Communities) {
				return fmt.Errorf("slpa: node %d references community %d out of range", u, cid)
			}
			if !inComm[cid][u] {
				return fmt.Errorf("slpa: node %d claims community %d which does not list it", u, cid)
			}
		}
	}
	return nil
}

// OverlapNodes returns the nodes that belong to more than one community
// — the bridges.
func (c *Cover) OverlapNodes() []int {
	var out []int
	for u, comms := range c.Memberships {
		if len(comms) > 1 {
			out = append(out, u)
		}
	}
	return out
}

// DetectOverlapping runs SLPA and keeps, for every node, every label
// whose memory frequency is at least r (the original algorithm's
// post-processing threshold, typically 0.05-0.5). Lower r keeps more
// overlap; r > 0.5 degenerates to the disjoint output.
func DetectOverlapping(g *graph.Graph, opt Options, r float64, rng *xrand.RNG) (*Cover, error) {
	if r <= 0 || r > 1 {
		return nil, fmt.Errorf("slpa: threshold r must be in (0,1], got %v", r)
	}
	opt = opt.withDefaults()
	n := g.N()
	und := g.Undirected()
	memory := make([]map[int]int, n)
	memSize := make([]int, n)
	for u := range memory {
		memory[u] = map[int]int{u: 1}
		memSize[u] = 1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for it := 0; it < opt.Iterations; it++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, listener := range order {
			ts, ws := und.Neighbors(listener)
			if len(ts) == 0 {
				continue
			}
			received := map[int]float64{}
			for i, speaker := range ts {
				label := speak(memory[speaker], memSize[speaker], rng)
				received[label] += ws[i]
			}
			best, bestW := -1, -1.0
			for label, w := range received {
				if w > bestW || (w == bestW && label < best) {
					best, bestW = label, w
				}
			}
			memory[listener][best]++
			memSize[listener]++
		}
	}
	// Post-processing: keep labels above the frequency threshold; always
	// keep the most frequent label so every node is covered.
	rawMemberships := make([][]int, n)
	labelsSeen := map[int]int{} // raw label -> dense community id
	var communities [][]int
	for u := 0; u < n; u++ {
		var kept []int
		bestLabel, bestCount := -1, -1
		for label, cnt := range memory[u] {
			if float64(cnt)/float64(memSize[u]) >= r {
				kept = append(kept, label)
			}
			if cnt > bestCount || (cnt == bestCount && label < bestLabel) {
				bestLabel, bestCount = label, cnt
			}
		}
		if len(kept) == 0 {
			kept = []int{bestLabel}
		}
		sort.Ints(kept)
		for _, label := range kept {
			id, ok := labelsSeen[label]
			if !ok {
				id = len(communities)
				labelsSeen[label] = id
				communities = append(communities, nil)
			}
			communities[id] = append(communities[id], u)
			rawMemberships[u] = append(rawMemberships[u], id)
		}
	}
	for _, members := range communities {
		sort.Ints(members)
	}
	for _, comms := range rawMemberships {
		sort.Ints(comms)
	}
	return &Cover{Memberships: rawMemberships, Communities: communities}, nil
}
