package slpa

import (
	"testing"

	"viralcast/internal/graph"
	"viralcast/internal/xrand"
)

// bridgedCliques builds two K6s sharing one bridge node (id 12) that is
// fully connected to both cliques.
func bridgedCliques(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(13)
	add := func(u, v int) {
		if err := b.AddEdge(u, v, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(v, u, 1); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			add(u, v)
		}
	}
	for u := 6; u < 12; u++ {
		for v := u + 1; v < 12; v++ {
			add(u, v)
		}
	}
	for u := 0; u < 12; u++ {
		add(u, 12)
	}
	return b.Build()
}

func TestDetectOverlappingValidation(t *testing.T) {
	g := bridgedCliques(t)
	if _, err := DetectOverlapping(g, Options{}, 0, xrand.New(1)); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := DetectOverlapping(g, Options{}, 1.5, xrand.New(1)); err == nil {
		t.Error("r>1 accepted")
	}
}

func TestDetectOverlappingCoversAllNodes(t *testing.T) {
	g := bridgedCliques(t)
	cover, err := DetectOverlapping(g, Options{Iterations: 60}, 0.2, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := cover.Validate(13); err != nil {
		t.Fatal(err)
	}
	if cover.NumCommunities() < 2 {
		t.Fatalf("found %d communities, want >= 2", cover.NumCommunities())
	}
}

func TestBridgeNodeOverlaps(t *testing.T) {
	g := bridgedCliques(t)
	cover, err := DetectOverlapping(g, Options{Iterations: 80}, 0.15, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := cover.Validate(13); err != nil {
		t.Fatal(err)
	}
	// The bridge (node 12) should hold more labels than a typical clique
	// core node — it hears both communities constantly.
	overlaps := cover.OverlapNodes()
	found := false
	for _, u := range overlaps {
		if u == 12 {
			found = true
		}
	}
	if !found {
		// SLPA is stochastic; accept if the bridge's membership count at
		// least ties the maximum.
		max := 0
		for _, comms := range cover.Memberships {
			if len(comms) > max {
				max = len(comms)
			}
		}
		if len(cover.Memberships[12]) < max {
			t.Errorf("bridge node has %d memberships, max elsewhere %d (overlaps: %v)",
				len(cover.Memberships[12]), max, overlaps)
		}
	}
}

func TestHighThresholdNearDisjoint(t *testing.T) {
	g := bridgedCliques(t)
	cover, err := DetectOverlapping(g, Options{Iterations: 60}, 0.6, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := cover.Validate(13); err != nil {
		t.Fatal(err)
	}
	// At r > 0.5 at most one label can pass the threshold per node.
	for u, comms := range cover.Memberships {
		if len(comms) > 1 {
			t.Fatalf("node %d has %d memberships at r=0.6", u, len(comms))
		}
	}
}

func TestCoverValidateCatchesCorruption(t *testing.T) {
	broken := &Cover{
		Memberships: [][]int{{0}, {}},
		Communities: [][]int{{0}},
	}
	if err := broken.Validate(2); err == nil {
		t.Error("empty membership accepted")
	}
	mismatch := &Cover{
		Memberships: [][]int{{0}, {0}},
		Communities: [][]int{{0}}, // node 1 claims community 0 but is not listed
	}
	if err := mismatch.Validate(2); err == nil {
		t.Error("membership/community mismatch accepted")
	}
	dup := &Cover{
		Memberships: [][]int{{0}},
		Communities: [][]int{{0, 0}},
	}
	if err := dup.Validate(1); err == nil {
		t.Error("duplicate member accepted")
	}
}
