package experiments

import (
	"fmt"
	"strings"

	"viralcast/internal/eval"
	"viralcast/internal/infer"
	"viralcast/internal/report"
)

// EarlyWindowSweep answers the deployment question the paper's fixed
// 2/7 horizon leaves open: how does prediction quality change with how
// long we wait before predicting? One workload is built and fitted once;
// the early-adopter horizon sweeps across the observation window.
type EarlyWindowSweep struct {
	Fractions []float64
	F1        []float64
	Accuracy  []float64
	// Coverage is the fraction of test cascades observable (>= 1 report)
	// at each horizon.
	Coverage []float64
}

// SweepEarlyWindow evaluates the top-20% task at several horizons.
func SweepEarlyWindow(e SBMExperiment, fractions []float64) (*EarlyWindowSweep, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.05, 0.1, 0.2, 2.0 / 7.0, 0.4, 0.6}
	}
	w, err := BuildSBMWorkload(e)
	if err != nil {
		return nil, err
	}
	model, _, err := w.FitEmbeddings()
	if err != nil {
		return nil, err
	}
	out := &EarlyWindowSweep{}
	for _, frac := range fractions {
		if frac <= 0 || frac >= 1 {
			return nil, fmt.Errorf("experiments: early fraction %v out of (0,1)", frac)
		}
		cutoff := e.Window * frac
		sets, sizes, err := w.PredictionDataAt(model, cutoff)
		if err != nil {
			return nil, err
		}
		if len(sets) < 20 {
			continue // horizon too early: almost nothing observable
		}
		threshold := eval.TopFractionThreshold(sizes, 0.2)
		conf, err := PredictF1(sets, sizes, threshold, nil, 10, e.Seed+31)
		if err != nil {
			continue
		}
		out.Fractions = append(out.Fractions, frac)
		out.F1 = append(out.F1, conf.F1())
		out.Accuracy = append(out.Accuracy, conf.Accuracy())
		out.Coverage = append(out.Coverage, float64(len(sets))/float64(len(w.Test)))
	}
	if len(out.Fractions) == 0 {
		return nil, fmt.Errorf("experiments: no usable horizons")
	}
	return out, nil
}

// Render renders the early-window sweep.
func (r *EarlyWindowSweep) Render() string {
	var b strings.Builder
	b.WriteString("Sweep — prediction quality vs early-observation horizon (top-20% task)\n")
	rows := make([][]string, len(r.Fractions))
	for i := range r.Fractions {
		rows[i] = []string{
			report.FormatFloat(r.Fractions[i], 3),
			report.FormatFloat(r.F1[i], 3),
			report.FormatFloat(r.Accuracy[i], 3),
			report.FormatFloat(r.Coverage[i], 3),
		}
	}
	b.WriteString(report.Table([]string{"window-frac", "F1", "accuracy", "coverage"}, rows))
	return b.String()
}

// SampleComplexity traces how inference quality grows with the number of
// training cascades — the MLE-consistency view. Quality is measured as
// held-out log-likelihood per infection (higher is better), which is
// comparable across training-set sizes.
type SampleComplexity struct {
	TrainSizes          []int
	HeldOutPerInfection []float64
}

// SweepTrainingSize fits the model on nested prefixes of the training
// cascades and scores each on the same held-out set.
func SweepTrainingSize(e SBMExperiment, trainSizes []int) (*SampleComplexity, error) {
	if len(trainSizes) == 0 {
		trainSizes = []int{100, 200, 400, 800, 1600}
	}
	w, err := BuildSBMWorkload(e)
	if err != nil {
		return nil, err
	}
	testInfections := 0
	for _, c := range w.Test {
		testInfections += c.Size()
	}
	if testInfections == 0 {
		return nil, fmt.Errorf("experiments: empty held-out set")
	}
	out := &SampleComplexity{}
	for _, sz := range trainSizes {
		if sz < 10 || sz > len(w.Train) {
			continue
		}
		cfg := infer.Config{K: e.InferK, MaxIter: e.MaxIter, Seed: e.Seed + 1}
		m, _, _, err := infer.Pipeline(w.Train[:sz], e.N, cfg, infer.PipelineOptions{
			Cooccur:  cooccurOptions(),
			SLPA:     slpaOptions(),
			Parallel: infer.ParallelOptions{Workers: e.Workers},
		})
		if err != nil {
			return nil, err
		}
		out.TrainSizes = append(out.TrainSizes, sz)
		out.HeldOutPerInfection = append(out.HeldOutPerInfection,
			m.LogLikAll(w.Test)/float64(testInfections))
	}
	if len(out.TrainSizes) == 0 {
		return nil, fmt.Errorf("experiments: no usable training sizes")
	}
	return out, nil
}

// Render renders the sample-complexity curve.
func (r *SampleComplexity) Render() string {
	var b strings.Builder
	b.WriteString("Sweep — held-out log-likelihood per infection vs training cascades\n")
	rows := make([][]string, len(r.TrainSizes))
	for i := range r.TrainSizes {
		rows[i] = []string{
			fmt.Sprintf("%d", r.TrainSizes[i]),
			report.FormatFloat(r.HeldOutPerInfection[i], 4),
		}
	}
	b.WriteString(report.Table([]string{"train-cascades", "heldout-ll/infection"}, rows))
	return b.String()
}
