package experiments

import (
	"strings"

	"viralcast/internal/cooccur"
	"viralcast/internal/infer"
	"viralcast/internal/report"
	"viralcast/internal/slpa"
	"viralcast/internal/xrand"
)

// ConvergenceResult backs the paper's §I claim that "the block-coordinate
// stochastic gradient descent algorithm converges very fast in practice":
// the full-data log-likelihood trajectory of each optimizer, indexed by
// epoch (sequential, Hogwild) or by hierarchy level (hierarchical).
type ConvergenceResult struct {
	Sequential   []float64 // loglik after each accepted epoch
	Hogwild      []float64 // loglik after each epoch
	Hierarchical []float64 // loglik after each level
	// HierLevels records the community count at each hierarchical point.
	HierLevels []int
}

// ConvergenceStudy fits the three optimizers on one workload and records
// their likelihood trajectories.
func ConvergenceStudy(e SBMExperiment) (*ConvergenceResult, error) {
	w, err := BuildSBMWorkload(e)
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{}
	cfg := infer.Config{K: e.InferK, MaxIter: e.MaxIter, Seed: e.Seed + 1}

	_, seqTr, err := infer.Sequential(w.Train, e.N, cfg)
	if err != nil {
		return nil, err
	}
	res.Sequential = seqTr.LogLik

	_, hogTr, err := infer.Hogwild(w.Train, e.N, infer.Config{
		K: e.InferK, LearnRate: 0.02, Seed: e.Seed + 1,
	}, infer.HogwildOptions{Workers: e.Workers, Epochs: e.MaxIter})
	if err != nil {
		return nil, err
	}
	res.Hogwild = hogTr.LogLik

	// Hierarchical needs a partition; use the pipeline's standard one.
	g, err := cooccur.Build(w.Train, e.N, cooccurOptions())
	if err != nil {
		return nil, err
	}
	part := slpa.Detect(g, slpaOptions(), xrand.New(e.Seed^0x51a9))
	_, hierTr, err := infer.Hierarchical(w.Train, e.N, part, cfg, infer.ParallelOptions{Workers: e.Workers})
	if err != nil {
		return nil, err
	}
	for _, lv := range hierTr.Levels {
		res.Hierarchical = append(res.Hierarchical, lv.LogLik)
		res.HierLevels = append(res.HierLevels, lv.Communities)
	}
	return res, nil
}

// Render draws the three trajectories on one grid (epoch index on x;
// the hierarchical series is indexed by level).
func (r *ConvergenceResult) Render() string {
	var b strings.Builder
	b.WriteString("Convergence — full-data log-likelihood trajectories\n")
	var series []report.Series
	toPoints := func(xs []float64) []report.Point {
		pts := make([]report.Point, len(xs))
		for i, v := range xs {
			pts[i] = report.Point{X: float64(i), Y: v}
		}
		return pts
	}
	if len(r.Sequential) > 0 {
		series = append(series, report.Series{Name: "sequential (per epoch)", Points: toPoints(r.Sequential)})
	}
	if len(r.Hogwild) > 0 {
		series = append(series, report.Series{Name: "hogwild (per epoch)", Points: toPoints(r.Hogwild)})
	}
	if len(r.Hierarchical) > 0 {
		series = append(series, report.Series{Name: "hierarchical (per level)", Points: toPoints(r.Hierarchical)})
	}
	b.WriteString(report.ASCIILines(series, 60, 14))
	rows := make([][]string, 0, len(r.Hierarchical))
	for i, ll := range r.Hierarchical {
		rows = append(rows, []string{
			report.FormatFloat(float64(r.HierLevels[i]), 0),
			report.FormatFloat(ll, 1),
		})
	}
	b.WriteString("\nhierarchical per-level likelihood:\n")
	b.WriteString(report.Table([]string{"communities", "loglik"}, rows))
	return b.String()
}
