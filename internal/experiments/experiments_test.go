package experiments

import (
	"testing"

	"viralcast/internal/gdelt"
)

// testSBM is a small but structurally faithful workload.
func testSBM() SBMExperiment {
	e := DefaultSBM()
	e = e.scaled(400, 450)
	e.MaxIter = 8
	return e
}

func testGDELT() gdelt.Config {
	cfg := gdelt.DefaultConfig()
	cfg.Sites = 300
	cfg.Events = 400
	cfg.MeanDegree = 12
	cfg.CrossLinks = 50
	cfg.Seed = 2
	return cfg
}

func TestSBMExperimentValidate(t *testing.T) {
	if err := DefaultSBM().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultSBM()
	bad.Train = bad.Cascades
	if err := bad.Validate(); err == nil {
		t.Error("Train >= Cascades accepted")
	}
	bad = DefaultSBM()
	bad.EarlyFrac = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("EarlyFrac > 1 accepted")
	}
}

func TestBuildSBMWorkload(t *testing.T) {
	w, err := BuildSBMWorkload(testSBM())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Train)+len(w.Test) != 450 {
		t.Fatalf("split sizes: %d + %d", len(w.Train), len(w.Test))
	}
	if err := w.Truth.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.EarlyCutoff() <= 0 || w.EarlyCutoff() >= w.Exp.Window {
		t.Fatalf("EarlyCutoff = %v", w.EarlyCutoff())
	}
	// Sizes must be heavy-tailed: some cascade should be much larger than
	// the median.
	var max, total int
	for _, c := range w.Train {
		if c.Size() > max {
			max = c.Size()
		}
		total += c.Size()
	}
	mean := float64(total) / float64(len(w.Train))
	if float64(max) < 2.5*mean {
		t.Errorf("no heavy tail: max %d vs mean %.1f", max, mean)
	}
}

func TestFigures6to9SmallScale(t *testing.T) {
	scatter, fig9, err := Figures6to9(testSBM())
	if err != nil {
		t.Fatal(err)
	}
	if len(scatter.DiverA) == 0 || len(scatter.DiverA) != len(scatter.NormA) {
		t.Fatalf("scatter sizes: %d / %d", len(scatter.DiverA), len(scatter.NormA))
	}
	// The features must carry real signal: positive rank correlation.
	if scatter.CorrDiverA <= 0.1 || scatter.CorrNormA <= 0.1 || scatter.CorrMaxA <= 0.1 {
		t.Errorf("weak correlations: %v %v %v",
			scatter.CorrDiverA, scatter.CorrNormA, scatter.CorrMaxA)
	}
	if len(fig9.Thresholds) == 0 || len(fig9.Thresholds) != len(fig9.F1) {
		t.Fatalf("fig9 thresholds/F1: %d / %d", len(fig9.Thresholds), len(fig9.F1))
	}
	// F1 at the lowest threshold must beat F1 at the highest (the paper's
	// downward-sloping curve).
	if fig9.F1[0] <= fig9.F1[len(fig9.F1)-1] {
		t.Errorf("F1 curve not decreasing: %v", fig9.F1)
	}
	for _, f := range fig9.F1 {
		if f < 0 || f > 1 {
			t.Fatalf("F1 out of range: %v", fig9.F1)
		}
	}
	// Rendering and CSV must not panic and must carry content.
	if s := scatter.Render(); len(s) < 100 {
		t.Error("scatter render too short")
	}
	if s := fig9.Render(); len(s) < 100 {
		t.Error("fig9 render too short")
	}
	h, rows := fig9.CSV()
	if len(h) != 2 || len(rows) != len(fig9.Thresholds) {
		t.Error("fig9 CSV malformed")
	}
	h2, rows2 := scatter.CSV()
	if len(h2) != 4 || len(rows2) != len(scatter.DiverA) {
		t.Error("scatter CSV malformed")
	}
}

func TestFigure1(t *testing.T) {
	ds, err := gdelt.Generate(testGDELT())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Figure1(ds, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled < 50 {
		t.Fatalf("too few usable cascades: %d", res.Sampled)
	}
	if len(res.TopMerges) == 0 {
		t.Fatal("no merges recorded")
	}
	// Cluster sizes must cover all sampled cascades.
	total := 0
	for _, s := range res.ClusterSizes {
		total += s
	}
	if total != res.Sampled {
		t.Fatalf("cluster sizes sum %d != sampled %d", total, res.Sampled)
	}
	// Regional structure should make the clustering far better than the
	// 1/k chance level.
	if res.RegionPurity < 0.5 {
		t.Errorf("region purity %.3f too low", res.RegionPurity)
	}
	if s := res.Render(); len(s) < 50 {
		t.Error("render too short")
	}
}

func TestFigure2(t *testing.T) {
	ds, err := gdelt.Generate(testGDELT())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Figure2(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges == 0 || res.Nodes == 0 {
		t.Fatalf("empty backbone: %+v", res)
	}
	if res.IntraRegional <= 0.5 {
		t.Errorf("intra-regional fraction %.3f; backbone should be regional", res.IntraRegional)
	}
	if s := res.Render(); len(s) < 50 {
		t.Error("render too short")
	}
}

func TestFigure3(t *testing.T) {
	ds, err := gdelt.Generate(testGDELT())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Figure3(ds, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) == 0 {
		t.Fatal("no bins")
	}
	if res.Alpha < 1 || res.Alpha > 10 {
		t.Errorf("implausible power-law alpha %.2f", res.Alpha)
	}
	if s := res.Render(); len(s) < 50 {
		t.Error("render too short")
	}
}

func TestFigures10And13(t *testing.T) {
	sc := DefaultScaling()
	sc.MaxIter = 6
	series, err := Figure10(sc, 300, []int{120, 240})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Seconds) != len(sc.Cores) {
			t.Fatalf("series %s has %d points", s.Label, len(s.Seconds))
		}
		for _, sec := range s.Seconds {
			if sec <= 0 {
				t.Fatalf("non-positive runtime in %s: %v", s.Label, s.Seconds)
			}
		}
		sp := s.Speedup()
		if sp[0] != 1 {
			t.Fatalf("speedup at 1 core = %v", sp[0])
		}
		ef := s.Efficiency()
		if ef[0] != 1 {
			t.Fatalf("efficiency at 1 core = %v", ef[0])
		}
		// Efficiency must decline with core count (communication + load
		// imbalance), matching the paper's Figure 13.
		if ef[len(ef)-1] >= ef[0] {
			t.Errorf("efficiency did not decline: %v", ef)
		}
	}
	// More cascades must cost more at 1 core (paper: time linear in C).
	if series[1].Seconds[0] <= series[0].Seconds[0] {
		t.Errorf("t1 not increasing in C: %v vs %v", series[0].Seconds[0], series[1].Seconds[0])
	}
	f13 := &Figure13Result{Series: series}
	if s := f13.Render(); len(s) < 100 {
		t.Error("fig13 render too short")
	}
	if s := RenderScaling("t", series); len(s) < 100 {
		t.Error("scaling render too short")
	}
	h, rows := CSVScaling(series)
	if len(h) != 6 || len(rows) != 2*len(sc.Cores) {
		t.Error("scaling CSV malformed")
	}
}

func TestFigure11(t *testing.T) {
	sc := DefaultScaling()
	sc.MaxIter = 5
	series, err := Figure11(sc, []int{200, 400}, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	// The paper's point: runtime depends weakly on N at fixed C. Allow a
	// generous factor but require the same order of magnitude.
	t1a, t1b := series[0].Seconds[0], series[1].Seconds[0]
	ratio := t1b / t1a
	if ratio > 6 || ratio < 1.0/6 {
		t.Errorf("runtime strongly depends on N: %v vs %v", t1a, t1b)
	}
}

func TestFigure12SmallScale(t *testing.T) {
	e := DefaultGDELTPrediction()
	e.Dataset = testGDELT()
	e.MaxIter = 8
	res, err := Figure12(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < 20 {
		t.Fatalf("too few test events: %d", res.Events)
	}
	if len(res.Thresholds) == 0 {
		t.Fatal("no thresholds")
	}
	for _, f := range res.F1 {
		if f < 0 || f > 1 {
			t.Fatalf("F1 out of range: %v", res.F1)
		}
	}
	if s := res.Render(); len(s) < 50 {
		t.Error("render too short")
	}
	h, rows := res.CSV()
	if len(h) != 2 || len(rows) != len(res.Thresholds) {
		t.Error("CSV malformed")
	}
}

func TestAblationMergePolicy(t *testing.T) {
	sc := DefaultScaling()
	sc.MaxIter = 5
	rows, err := AblationMergePolicy(testSBM(), sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Node-count balancing must not be worse balanced than sequential
	// pairing.
	if rows[1].Imbalance > rows[0].Imbalance+1e-9 {
		t.Errorf("ByNodeCount imbalance %v worse than ByCommunityCount %v",
			rows[1].Imbalance, rows[0].Imbalance)
	}
	if s := RenderMergePolicy(rows, 8); len(s) < 50 {
		t.Error("render too short")
	}
}

func TestAblationOptimizers(t *testing.T) {
	e := testSBM()
	e.MaxIter = 5
	rows, err := AblationOptimizers(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.Seconds <= 0 {
			t.Errorf("%s: non-positive runtime", r.Name)
		}
	}
	for _, want := range []string{"sequential", "hierarchical", "hogwild"} {
		if !names[want] {
			t.Errorf("missing optimizer %q", want)
		}
	}
	if s := RenderOptimizers(rows); len(s) < 50 {
		t.Error("render too short")
	}
}

func TestAblationFeatures(t *testing.T) {
	rows, err := AblationFeatures(testSBM())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.F1 < 0 || r.F1 > 1 {
			t.Fatalf("F1 out of range: %+v", r)
		}
	}
	if s := RenderFeatures(rows); len(s) < 50 {
		t.Error("render too short")
	}
}

func TestAblationTopicK(t *testing.T) {
	e := testSBM()
	e.MaxIter = 5
	rows, err := AblationTopicK(e, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].K != 1 || rows[1].K != 4 {
		t.Fatalf("rows = %+v", rows)
	}
	if s := RenderTopicSweep(rows); len(s) < 50 {
		t.Error("render too short")
	}
}

func TestPredictF1Errors(t *testing.T) {
	w, err := BuildSBMWorkload(testSBM())
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := w.FitEmbeddings()
	if err != nil {
		t.Fatal(err)
	}
	sets, sizes, err := w.PredictionData(model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PredictF1(sets, sizes, 1<<30, nil, 10, 1); err == nil {
		t.Error("single-class threshold accepted")
	}
	if _, err := PredictF1(sets, sizes, 2, []string{"nope"}, 10, 1); err == nil {
		t.Error("unknown feature accepted")
	}
}

func TestCompareEdgeBaseline(t *testing.T) {
	e := testSBM()
	e.MaxIter = 5
	rows, err := CompareEdgeBaseline(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	node, edge := rows[0], rows[1]
	if node.Parameters != 2*e.N*e.InferK {
		t.Errorf("node parameter count = %d", node.Parameters)
	}
	if edge.Parameters <= 0 {
		t.Errorf("edge parameter count = %d", edge.Parameters)
	}
	// The paper's critique: the edge model needs far more parameters.
	if edge.Parameters < node.Parameters {
		t.Logf("note: sparse workload, edge params %d < node params %d", edge.Parameters, node.Parameters)
	}
	if s := RenderModelComparison(rows); len(s) < 50 {
		t.Error("render too short")
	}
}

func TestComparePredictors(t *testing.T) {
	e := testSBM()
	e.MaxIter = 5
	rows, err := ComparePredictors(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d, want 4 predictor variants", len(rows))
	}
	for _, r := range rows {
		if r.F1 < 0 || r.F1 > 1 || r.Accuracy < 0 || r.Accuracy > 1 {
			t.Fatalf("metrics out of range: %+v", r)
		}
	}
	if s := RenderPredictorComparison(rows); len(s) < 50 {
		t.Error("render too short")
	}
}

func TestConvergenceStudy(t *testing.T) {
	e := testSBM()
	e.MaxIter = 6
	res, err := ConvergenceStudy(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequential) < 2 {
		t.Fatalf("sequential trajectory too short: %v", res.Sequential)
	}
	// Sequential trajectory must be monotone non-decreasing.
	for i := 1; i < len(res.Sequential); i++ {
		if res.Sequential[i] < res.Sequential[i-1]-1e-9 {
			t.Fatalf("sequential loglik decreased: %v", res.Sequential)
		}
	}
	if len(res.Hierarchical) == 0 || len(res.Hierarchical) != len(res.HierLevels) {
		t.Fatalf("hierarchical trajectory malformed: %v / %v", res.Hierarchical, res.HierLevels)
	}
	// The hierarchy must end at the root.
	if res.HierLevels[len(res.HierLevels)-1] != 1 {
		t.Errorf("last level = %d communities", res.HierLevels[len(res.HierLevels)-1])
	}
	if len(res.Hogwild) != 6 {
		t.Errorf("hogwild epochs = %d", len(res.Hogwild))
	}
	if s := res.Render(); len(s) < 100 {
		t.Error("render too short")
	}
}

func TestSweepEarlyWindow(t *testing.T) {
	e := testSBM()
	e.MaxIter = 5
	res, err := SweepEarlyWindow(e, []float64{0.1, 0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fractions) == 0 {
		t.Fatal("no horizons evaluated")
	}
	for i := range res.Fractions {
		if res.F1[i] < 0 || res.F1[i] > 1 || res.Coverage[i] <= 0 || res.Coverage[i] > 1 {
			t.Fatalf("bad sweep row %d: %+v", i, res)
		}
	}
	// Coverage must not decrease as the horizon lengthens.
	for i := 1; i < len(res.Coverage); i++ {
		if res.Coverage[i] < res.Coverage[i-1]-1e-9 {
			t.Errorf("coverage decreased with a longer horizon: %v", res.Coverage)
		}
	}
	if _, err := SweepEarlyWindow(e, []float64{1.5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if s := res.Render(); len(s) < 50 {
		t.Error("render too short")
	}
}

func TestSweepTrainingSize(t *testing.T) {
	e := testSBM()
	e.MaxIter = 5
	res, err := SweepTrainingSize(e, []int{60, 150, 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainSizes) != 3 {
		t.Fatalf("sizes evaluated: %v", res.TrainSizes)
	}
	// More data must not catastrophically hurt held-out fit: the largest
	// training set should beat the smallest.
	first := res.HeldOutPerInfection[0]
	last := res.HeldOutPerInfection[len(res.HeldOutPerInfection)-1]
	if last < first-0.5 {
		t.Errorf("held-out fit degraded with more data: %v", res.HeldOutPerInfection)
	}
	if s := res.Render(); len(s) < 50 {
		t.Error("render too short")
	}
}
