package experiments

import (
	"fmt"
	"sort"
	"strings"

	"viralcast/internal/eval"
	"viralcast/internal/features"
	"viralcast/internal/gdelt"
	"viralcast/internal/infer"
)

// GDELTPredictionExperiment configures the Figure 12 study: predict, from
// the sites reporting a news event in its first EarlyHours, how many
// sites will have reported it within the full window (paper: first 5
// hours predict the 3-day total, 2,600 sampled events, 6,000 sites).
type GDELTPredictionExperiment struct {
	Dataset    gdelt.Config
	TrainFrac  float64 // fraction of events used to fit the embeddings
	EarlyHours float64
	InferK     int
	MaxIter    int
	Workers    int
	Seed       uint64
}

// DefaultGDELTPrediction mirrors the paper's §VI-B setup.
func DefaultGDELTPrediction() GDELTPredictionExperiment {
	return GDELTPredictionExperiment{
		Dataset:    gdelt.DefaultConfig(),
		TrainFrac:  0.7,
		EarlyHours: 5,
		InferK:     4,
		MaxIter:    20,
		Workers:    4,
		Seed:       1,
	}
}

// Figure12Result holds the GDELT virality-prediction sweep.
type Figure12Result struct {
	Events     int
	Thresholds []int
	F1         []float64
	TopFracF1  float64
	TopFracThr int
	TopFracAUC float64
}

// Figure12 runs the end-to-end GDELT study: generate the corpus, infer
// site embeddings from the training events, extract early-reporter
// features for the held-out events, and sweep the classification
// threshold.
func Figure12(e GDELTPredictionExperiment) (*Figure12Result, error) {
	if e.TrainFrac <= 0 || e.TrainFrac >= 1 {
		return nil, fmt.Errorf("experiments: TrainFrac must be in (0,1), got %v", e.TrainFrac)
	}
	ds, err := gdelt.Generate(e.Dataset)
	if err != nil {
		return nil, err
	}
	nTrain := int(float64(len(ds.Events)) * e.TrainFrac)
	if nTrain < 1 || nTrain >= len(ds.Events) {
		return nil, fmt.Errorf("experiments: degenerate train split %d of %d", nTrain, len(ds.Events))
	}
	train, test := ds.Events[:nTrain], ds.Events[nTrain:]
	cfg := infer.Config{K: e.InferK, MaxIter: e.MaxIter, Seed: e.Seed + 1}
	model, _, _, err := infer.Pipeline(train, e.Dataset.Sites, cfg, infer.PipelineOptions{
		Cooccur:  cooccurOptions(),
		SLPA:     slpaOptions(),
		Parallel: infer.ParallelOptions{Workers: e.Workers},
	})
	if err != nil {
		return nil, err
	}
	sets, sizes, err := features.ExtractAll(model, test, e.EarlyHours)
	if err != nil {
		return nil, err
	}
	if len(sets) < 20 {
		return nil, fmt.Errorf("experiments: only %d usable test events", len(sets))
	}
	res := &Figure12Result{Events: len(sets)}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	seen := map[int]bool{}
	for _, q := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95} {
		th := sorted[int(q*float64(len(sorted)-1))]
		if th < 2 || seen[th] {
			continue
		}
		seen[th] = true
		conf, err := PredictF1(sets, sizes, th, nil, 10, e.Seed+9)
		if err != nil {
			continue
		}
		res.Thresholds = append(res.Thresholds, th)
		res.F1 = append(res.F1, conf.F1())
	}
	if len(res.Thresholds) == 0 {
		return nil, fmt.Errorf("experiments: no usable thresholds for GDELT prediction")
	}
	res.TopFracThr = eval.TopFractionThreshold(sizes, 0.2)
	if conf, err := PredictF1(sets, sizes, res.TopFracThr, nil, 10, e.Seed+9); err == nil {
		res.TopFracF1 = conf.F1()
	}
	if auc, err := PredictAUC(sets, sizes, res.TopFracThr, nil, 10, e.Seed+9); err == nil {
		res.TopFracAUC = auc
	}
	return res, nil
}

// Render gives the terminal rendition of Figure 12.
func (r *Figure12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 — viral news-event prediction on the synthetic GDELT corpus (%d test events)\n", r.Events)
	b.WriteString("threshold  F1\n")
	for i, th := range r.Thresholds {
		fmt.Fprintf(&b, "%9d  %.3f\n", th, r.F1[i])
	}
	fmt.Fprintf(&b, "Top-20%% task: threshold=%d F1=%.3f AUC=%.3f (paper reports F1~0.80)\n", r.TopFracThr, r.TopFracF1, r.TopFracAUC)
	return b.String()
}

// CSV emits the F1 series.
func (r *Figure12Result) CSV() ([]string, [][]float64) {
	header := []string{"threshold", "f1"}
	rows := make([][]float64, len(r.Thresholds))
	for i := range r.Thresholds {
		rows[i] = []float64{float64(r.Thresholds[i]), r.F1[i]}
	}
	return header, rows
}
