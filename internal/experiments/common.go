// Package experiments contains one harness per figure of the paper's
// evaluation (Figures 1-3 measure the news-event corpus; Figures 6-9 the
// SBM prediction study; Figures 10, 11 and 13 the parallel scalability;
// Figure 12 the GDELT prediction study), plus the ablations DESIGN.md
// commits to. Each harness returns a typed result that can be rendered
// as text (for the cmd/figures binary) or emitted as CSV series.
package experiments

import (
	"fmt"
	"math"

	"viralcast/internal/cascade"
	"viralcast/internal/embed"
	"viralcast/internal/eval"
	"viralcast/internal/features"
	"viralcast/internal/graph"
	"viralcast/internal/infer"
	"viralcast/internal/sbm"
	"viralcast/internal/svm"
	"viralcast/internal/xrand"
)

// SBMExperiment configures the synthetic-network study shared by
// Figures 6-11 and 13. Defaults follow §VI-A: SBM with 2,000 nodes,
// alpha=0.2, beta=0.001 (~40-node blocks, average degree ~10); 3,000
// cascades of which the first 2,000 train the embeddings; the last 1,000
// are test cascades whose first 2/7 of the observation window is visible
// to the predictor.
type SBMExperiment struct {
	N         int
	BlockSize int
	Alpha     float64
	Beta      float64
	// TruthK is the number of planted topics; BridgeProb is the chance a
	// node covers a second topic (the multi-topic bridge nodes whose
	// cascades go viral).
	TruthK     int
	BridgeProb float64
	// RateScale multiplies the planted base hazard rates.
	RateScale float64
	// InfluenceAlpha is the Pareto exponent of the planted influence
	// magnitudes: smaller values mean heavier-tailed super-spreaders.
	InfluenceAlpha float64
	Cascades       int
	Train          int // first Train cascades fit the embeddings
	Window         float64
	EarlyFrac      float64 // fraction of the window visible to the predictor
	// Inference settings.
	InferK  int
	MaxIter int
	Workers int
	Seed    uint64
}

// DefaultSBM returns the paper-scale configuration.
func DefaultSBM() SBMExperiment {
	return SBMExperiment{
		N:              2000,
		BlockSize:      40,
		Alpha:          0.2,
		Beta:           0.001,
		TruthK:         8,
		BridgeProb:     0.15,
		RateScale:      2.5,
		InfluenceAlpha: 1.1,
		Cascades:       3000,
		Train:          2000,
		Window:         10,
		EarlyFrac:      2.0 / 7.0,
		InferK:         4,
		MaxIter:        30,
		Workers:        4,
		Seed:           1,
	}
}

// scaled shrinks the workload for fast unit tests while keeping every
// structural property.
func (e SBMExperiment) scaled(n, cascades int) SBMExperiment {
	e.N = n
	e.Cascades = cascades
	e.Train = cascades * 2 / 3
	return e
}

// Validate rejects unusable configurations.
func (e SBMExperiment) Validate() error {
	if e.N <= 0 || e.BlockSize <= 0 {
		return fmt.Errorf("experiments: bad SBM dims N=%d BlockSize=%d", e.N, e.BlockSize)
	}
	if e.TruthK <= 0 || e.InferK <= 0 {
		return fmt.Errorf("experiments: topic counts must be positive")
	}
	if e.Cascades <= 0 || e.Train <= 0 || e.Train >= e.Cascades {
		return fmt.Errorf("experiments: need 0 < Train < Cascades, got %d / %d", e.Train, e.Cascades)
	}
	if e.Window <= 0 || e.EarlyFrac <= 0 || e.EarlyFrac >= 1 {
		return fmt.Errorf("experiments: bad window %v / early fraction %v", e.Window, e.EarlyFrac)
	}
	return nil
}

// SBMWorkload is a fully materialized synthetic study: graph, planted
// truth, and simulated cascades split into train/test.
type SBMWorkload struct {
	Exp        SBMExperiment
	Graph      *graph.Graph
	Membership []int
	Truth      *embed.Model
	Train      []*cascade.Cascade
	Test       []*cascade.Cascade
}

// EarlyCutoff returns the prediction horizon: EarlyFrac of the window.
func (w *SBMWorkload) EarlyCutoff() float64 { return w.Exp.Window * w.Exp.EarlyFrac }

// BuildSBMWorkload generates the graph, plants the ground truth, and
// simulates the cascades.
func BuildSBMWorkload(e SBMExperiment) (*SBMWorkload, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(e.Seed)
	g, membership, err := sbm.Generate(sbm.Params{
		N: e.N, BlockSize: e.BlockSize, Alpha: e.Alpha, Beta: e.Beta,
	}, rng)
	if err != nil {
		return nil, err
	}
	truth := plantSBMTruth(e, g, membership, rng)
	sim, err := cascade.NewSimulator(g, truth.A, truth.B, e.Window)
	if err != nil {
		return nil, err
	}
	cs, err := sim.RunMany(0, e.Cascades, rng)
	if err != nil {
		return nil, err
	}
	return &SBMWorkload{
		Exp:        e,
		Graph:      g,
		Membership: membership,
		Truth:      truth,
		Train:      cs[:e.Train],
		Test:       cs[e.Train:],
	}, nil
}

// plantSBMTruth assigns each block a primary topic (block index mod
// TruthK); bridge nodes additionally cover a second random topic.
// Influence magnitudes are Pareto distributed: a small population of
// super-spreaders drives essentially all onward transmission, while
// ordinary nodes rarely infect anyone within the window. A cascade's
// final size is then approximately the summed reach of the influential
// nodes it recruits — and because influential nodes, once reachable, are
// recruited early (their inbound edges fire at the same rate as
// everyone's), the early adopters' influence features (normA, maxA,
// diverA) largely determine the final size. This is the "size grows
// almost linearly with the features" regime of the paper's Figures 6-8.
func plantSBMTruth(e SBMExperiment, g *graph.Graph, membership []int, rng *xrand.RNG) *embed.Model {
	m := embed.NewModel(e.N, e.TruthK)
	alpha := e.InfluenceAlpha
	if alpha <= 0 {
		alpha = 1.3
	}
	// Ordinary-pair transmission probability within the whole window is
	// small (rateOrd*W = 0.1*RateScale); super-spreaders multiply it by
	// their Pareto influence draw.
	rateOrd := 0.1 / e.Window * e.RateScale
	base := math.Sqrt(rateOrd)
	for u := 0; u < e.N; u++ {
		topics := []int{membership[u] % e.TruthK}
		if rng.Bernoulli(e.BridgeProb) && e.TruthK > 1 {
			second := rng.Intn(e.TruthK)
			if second != topics[0] {
				topics = append(topics, second)
			}
		}
		influence := rng.Pareto(1, alpha)
		if influence > 400 {
			influence = 400
		}
		for _, k := range topics {
			m.A.Set(u, k, base*influence*(0.7+0.6*rng.Float64()))
			m.B.Set(u, k, base*(0.5+rng.Float64()))
		}
	}
	return m
}

// FitEmbeddings runs the full inference pipeline (co-occurrence graph,
// SLPA, hierarchical parallel gradient ascent) on the training cascades.
func (w *SBMWorkload) FitEmbeddings() (*embed.Model, *infer.Trace, error) {
	cfg := infer.Config{K: w.Exp.InferK, MaxIter: w.Exp.MaxIter, Seed: w.Exp.Seed + 1}
	m, _, tr, err := infer.Pipeline(w.Train, w.Exp.N, cfg, infer.PipelineOptions{
		Cooccur:  cooccurOptions(),
		SLPA:     slpaOptions(),
		Parallel: infer.ParallelOptions{Workers: w.Exp.Workers},
	})
	return m, tr, err
}

// PredictionData extracts the early-adopter features and final sizes of
// the test cascades under the fitted model.
func (w *SBMWorkload) PredictionData(m *embed.Model) ([]features.Set, []int, error) {
	return features.ExtractAll(m, w.Test, w.EarlyCutoff())
}

// PredictionDataAt is PredictionData with an explicit early horizon,
// used by the early-window sweep.
func (w *SBMWorkload) PredictionDataAt(m *embed.Model, cutoff float64) ([]features.Set, []int, error) {
	return features.ExtractAll(m, w.Test, cutoff)
}

// PredictF1 runs the paper's virality classification at one size
// threshold: standardized features, linear SVM, stratified k-fold CV,
// pooled F1. featureNames selects which features feed the classifier
// (nil means the paper's trio diverA/normA/maxA).
func PredictF1(sets []features.Set, sizes []int, threshold int, featureNames []string, folds int, seed uint64) (eval.Confusion, error) {
	if featureNames == nil {
		featureNames = []string{"diverA", "normA", "maxA"}
	}
	x := make([][]float64, len(sets))
	for i, s := range sets {
		row, err := s.Select(featureNames)
		if err != nil {
			return eval.Confusion{}, err
		}
		// Influence features are heavy-tailed (super-spreader magnitudes);
		// the log transform keeps the linear margin from being dominated
		// by a handful of outliers.
		for j, v := range row {
			row[j] = math.Log1p(v)
		}
		x[i] = row
	}
	y := eval.LabelsBySizeThreshold(sizes, threshold)
	pos := 0
	for _, l := range y {
		if l == 1 {
			pos++
		}
	}
	if pos == 0 || pos == len(y) {
		return eval.Confusion{}, fmt.Errorf("experiments: threshold %d gives a single-class task (%d positives of %d)", threshold, pos, len(y))
	}
	trainer := func(trX [][]float64, trY []int) (func([]float64) int, error) {
		std, err := svm.FitStandardizer(trX)
		if err != nil {
			return nil, err
		}
		model, err := svm.TrainBestF1(std.Apply(trX), trY,
			svm.Options{Seed: seed, Epochs: 60}, nil, xrand.New(seed^0xf1))
		if err != nil {
			return nil, err
		}
		return func(row []float64) int {
			return model.Predict(std.Apply([][]float64{row})[0])
		}, nil
	}
	return eval.CrossValidate(x, y, folds, trainer, xrand.New(seed))
}

// PredictAUC is the threshold-free companion of PredictF1: the pooled
// cross-validated area under the ROC curve of the SVM decision value at
// one size threshold.
func PredictAUC(sets []features.Set, sizes []int, threshold int, featureNames []string, folds int, seed uint64) (float64, error) {
	if featureNames == nil {
		featureNames = []string{"diverA", "normA", "maxA"}
	}
	x := make([][]float64, len(sets))
	for i, s := range sets {
		row, err := s.Select(featureNames)
		if err != nil {
			return 0, err
		}
		for j, v := range row {
			row[j] = math.Log1p(v)
		}
		x[i] = row
	}
	y := eval.LabelsBySizeThreshold(sizes, threshold)
	trainer := func(trX [][]float64, trY []int) (func([]float64) float64, error) {
		std, err := svm.FitStandardizer(trX)
		if err != nil {
			return nil, err
		}
		model, err := svm.Train(std.Apply(trX), trY,
			svm.Options{Seed: seed, Epochs: 60, AutoBalance: true})
		if err != nil {
			return nil, err
		}
		return func(row []float64) float64 {
			return model.Decision(std.Apply([][]float64{row})[0])
		}, nil
	}
	return eval.CrossValidateAUC(x, y, folds, trainer, xrand.New(seed))
}
