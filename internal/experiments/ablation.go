package experiments

import (
	"fmt"
	"strings"
	"time"

	"viralcast/internal/cooccur"
	"viralcast/internal/eval"
	"viralcast/internal/infer"
	"viralcast/internal/mergetree"
	"viralcast/internal/report"
	"viralcast/internal/slpa"
	"viralcast/internal/xrand"
)

// MergePolicyAblation compares Algorithm 2's two merge-tree balancing
// rules — pairing by community count (the paper's design) versus pairing
// by graph-node count (the paper's stated future work) — on runtime at a
// fixed worker count and on the final log-likelihood.
type MergePolicyAblation struct {
	Policy    string
	Imbalance float64 // max/mean node imbalance after the first join
	Seconds   float64 // modeled runtime at the probe worker count
	LogLik    float64 // full-data log-likelihood of the fitted model
}

// AblationMergePolicy runs both policies on the same workload. workers
// is the core count the runtime is modeled at.
func AblationMergePolicy(e SBMExperiment, sc ScalingExperiment, workers int) ([]MergePolicyAblation, error) {
	w, err := BuildSBMWorkload(e)
	if err != nil {
		return nil, err
	}
	g, err := cooccur.Build(w.Train, e.N, cooccurOptions())
	if err != nil {
		return nil, err
	}
	part := slpa.Detect(g, slpaOptions(), xrand.New(e.Seed^0x51a9))
	cfg := infer.Config{K: e.InferK, MaxIter: e.MaxIter, Seed: e.Seed + 1}
	var out []MergePolicyAblation
	for _, policy := range []mergetree.Policy{mergetree.ByCommunityCount, mergetree.ByNodeCount} {
		m, profiles, err := infer.HierarchicalProfiled(w.Train, e.N, part, cfg, sc.Q, policy)
		if err != nil {
			return nil, err
		}
		joined, err := mergetree.Join(part, policy)
		if err != nil {
			return nil, err
		}
		out = append(out, MergePolicyAblation{
			Policy:    policy.String(),
			Imbalance: mergetree.Imbalance(joined),
			Seconds:   infer.ScheduleCost(profiles, workers, sc.BarrierCost).Seconds(),
			LogLik:    m.LogLikAll(w.Train),
		})
	}
	return out, nil
}

// RenderMergePolicy renders the merge-policy ablation.
func RenderMergePolicy(rows []MergePolicyAblation, workers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — merge-tree balancing policy (modeled at %d workers)\n", workers)
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Policy,
			report.FormatFloat(r.Imbalance, 3),
			report.FormatFloat(r.Seconds, 3),
			report.FormatFloat(r.LogLik, 1),
		}
	}
	b.WriteString(report.Table([]string{"policy", "imbalance", "seconds", "loglik"}, table))
	return b.String()
}

// OptimizerComparison pits the three inference strategies against each
// other on one workload: flat sequential full-batch ascent, the
// hierarchical community-parallel algorithm, and the Hogwild lock-free
// baseline (paper ref [19]).
type OptimizerComparison struct {
	Name      string
	Seconds   float64
	LogLik    float64 // training log-likelihood of the fitted model
	HeldOutLL float64 // log-likelihood on the held-out cascades
}

// AblationOptimizers runs the three optimizers on the same workload.
func AblationOptimizers(e SBMExperiment) ([]OptimizerComparison, error) {
	w, err := BuildSBMWorkload(e)
	if err != nil {
		return nil, err
	}
	cfg := infer.Config{K: e.InferK, MaxIter: e.MaxIter, Seed: e.Seed + 1}
	var out []OptimizerComparison

	start := time.Now()
	seqM, _, err := infer.Sequential(w.Train, e.N, cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, OptimizerComparison{
		Name:      "sequential",
		Seconds:   time.Since(start).Seconds(),
		LogLik:    seqM.LogLikAll(w.Train),
		HeldOutLL: seqM.LogLikAll(w.Test),
	})

	start = time.Now()
	hierM, _, _, err := infer.Pipeline(w.Train, e.N, cfg, infer.PipelineOptions{
		Cooccur:  cooccurOptions(),
		SLPA:     slpaOptions(),
		Parallel: infer.ParallelOptions{Workers: e.Workers},
	})
	if err != nil {
		return nil, err
	}
	out = append(out, OptimizerComparison{
		Name:      "hierarchical",
		Seconds:   time.Since(start).Seconds(),
		LogLik:    hierM.LogLikAll(w.Train),
		HeldOutLL: hierM.LogLikAll(w.Test),
	})

	start = time.Now()
	hogM, _, err := infer.Hogwild(w.Train, e.N, infer.Config{
		K: e.InferK, LearnRate: 0.02, Seed: e.Seed + 1,
	}, infer.HogwildOptions{Workers: e.Workers, Epochs: e.MaxIter})
	if err != nil {
		return nil, err
	}
	out = append(out, OptimizerComparison{
		Name:      "hogwild",
		Seconds:   time.Since(start).Seconds(),
		LogLik:    hogM.LogLikAll(w.Train),
		HeldOutLL: hogM.LogLikAll(w.Test),
	})
	return out, nil
}

// RenderOptimizers renders the optimizer comparison.
func RenderOptimizers(rows []OptimizerComparison) string {
	var b strings.Builder
	b.WriteString("Ablation — optimizer comparison\n")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Name,
			report.FormatFloat(r.Seconds, 2),
			report.FormatFloat(r.LogLik, 1),
			report.FormatFloat(r.HeldOutLL, 1),
		}
	}
	b.WriteString(report.Table([]string{"optimizer", "seconds", "train-loglik", "heldout-loglik"}, table))
	return b.String()
}

// FeatureAblation reports the virality-prediction F1 of individual
// features and feature groups at the top-20% threshold — quantifying
// what the embedding features add over the model-free early-count
// baseline.
type FeatureAblation struct {
	Features []string
	F1       float64
}

// AblationFeatures evaluates feature subsets on one fitted workload.
func AblationFeatures(e SBMExperiment) ([]FeatureAblation, error) {
	w, err := BuildSBMWorkload(e)
	if err != nil {
		return nil, err
	}
	model, _, err := w.FitEmbeddings()
	if err != nil {
		return nil, err
	}
	sets, sizes, err := w.PredictionData(model)
	if err != nil {
		return nil, err
	}
	threshold := eval.TopFractionThreshold(sizes, 0.2)
	groups := [][]string{
		{"diverA"},
		{"normA"},
		{"maxA"},
		{"diverA", "normA", "maxA"},
		{"earlyCount"},
		{"diverA", "normA", "maxA", "earlyCount", "earlyRate"},
	}
	var out []FeatureAblation
	for _, g := range groups {
		conf, err := PredictF1(sets, sizes, threshold, g, 10, e.Seed+13)
		if err != nil {
			return nil, err
		}
		out = append(out, FeatureAblation{Features: g, F1: conf.F1()})
	}
	return out, nil
}

// RenderFeatures renders the feature ablation.
func RenderFeatures(rows []FeatureAblation) string {
	var b strings.Builder
	b.WriteString("Ablation — feature sets at the top-20% threshold\n")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{strings.Join(r.Features, "+"), report.FormatFloat(r.F1, 3)}
	}
	b.WriteString(report.Table([]string{"features", "F1"}, table))
	return b.String()
}

// TopicSweep reports prediction F1 and held-out likelihood as the
// inference topic dimension K varies.
type TopicSweep struct {
	K         int
	F1        float64
	HeldOutLL float64
}

// AblationTopicK sweeps the latent dimension of the inferred model.
func AblationTopicK(e SBMExperiment, ks []int) ([]TopicSweep, error) {
	if len(ks) == 0 {
		ks = []int{1, 2, 4, 8, 16}
	}
	w, err := BuildSBMWorkload(e)
	if err != nil {
		return nil, err
	}
	var out []TopicSweep
	for _, k := range ks {
		cfg := infer.Config{K: k, MaxIter: e.MaxIter, Seed: e.Seed + 1}
		m, _, _, err := infer.Pipeline(w.Train, e.N, cfg, infer.PipelineOptions{
			Cooccur:  cooccurOptions(),
			SLPA:     slpaOptions(),
			Parallel: infer.ParallelOptions{Workers: e.Workers},
		})
		if err != nil {
			return nil, err
		}
		sets, sizes, err := w.PredictionData(m)
		if err != nil {
			return nil, err
		}
		threshold := eval.TopFractionThreshold(sizes, 0.2)
		f1 := 0.0
		if conf, err := PredictF1(sets, sizes, threshold, nil, 10, e.Seed+17); err == nil {
			f1 = conf.F1()
		}
		out = append(out, TopicSweep{K: k, F1: f1, HeldOutLL: m.LogLikAll(w.Test)})
	}
	return out, nil
}

// RenderTopicSweep renders the K sweep.
func RenderTopicSweep(rows []TopicSweep) string {
	var b strings.Builder
	b.WriteString("Ablation — inference topic dimension K\n")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			fmt.Sprintf("%d", r.K),
			report.FormatFloat(r.F1, 3),
			report.FormatFloat(r.HeldOutLL, 1),
		}
	}
	b.WriteString(report.Table([]string{"K", "top-20% F1", "heldout-loglik"}, table))
	return b.String()
}
