package experiments

import (
	"fmt"
	"sort"
	"strings"

	"viralcast/internal/cluster"
	"viralcast/internal/gdelt"
	"viralcast/internal/report"
	"viralcast/internal/stats"
	"viralcast/internal/xrand"
)

// Figure1Result reproduces Figure 1: the Ward-linkage dendrogram of
// sampled news-event cascades under the Jaccard distance of their
// reporting-site sets, annotated with the Ward distance and cascade
// count of the top inner nodes, plus the purity of the flat regional
// clustering (the paper's observation that the clusters correspond to
// the US / Australia / UK-Europe site pools).
type Figure1Result struct {
	Sampled   int
	TopMerges []cluster.Merge
	// Dendro is the full merge tree, rendered a few levels deep by
	// Render.
	Dendro *cluster.Dendrogram
	// ClusterSizes of the flat cut at the number of regions.
	ClusterSizes []int
	// RegionPurity is the fraction of cascades whose flat cluster matches
	// the majority home region of that cluster (computed from each
	// cascade's modal reporting region).
	RegionPurity float64
}

// Figure1 clusters `sample` cascades from the corpus (the paper samples
// 5,000).
func Figure1(ds *gdelt.Dataset, sample int, seed uint64) (*Figure1Result, error) {
	events := ds.SampleEvents(sample, xrand.New(seed))
	// Drop trivial cascades: singleton reporting sets make Jaccard
	// degenerate and the paper's sample is of real multi-site events.
	kept := events[:0]
	for _, e := range events {
		if e.Size() >= 2 {
			kept = append(kept, e)
		}
	}
	if len(kept) < 10 {
		return nil, fmt.Errorf("experiments: only %d usable cascades for clustering", len(kept))
	}
	d := cluster.Ward(cluster.CascadeDistances(kept))
	res := &Figure1Result{Sampled: len(kept), Dendro: d}
	res.TopMerges = d.TopMerges(8)
	k := len(ds.Config.Regions)
	labels, err := d.Cut(k)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, k)
	// Majority home region per cluster.
	regionVotes := make([]map[int]int, k)
	for i := range regionVotes {
		regionVotes[i] = map[int]int{}
	}
	modal := make([]int, len(kept))
	for i, e := range kept {
		counts := map[int]int{}
		for _, inf := range e.Infections {
			counts[ds.RegionOf(inf.Node)]++
		}
		best, bestC := 0, -1
		for r, c := range counts {
			if c > bestC {
				best, bestC = r, c
			}
		}
		modal[i] = best
		sizes[labels[i]]++
		regionVotes[labels[i]][best]++
	}
	res.ClusterSizes = sizes
	agree := 0
	for cl := 0; cl < k; cl++ {
		best := 0
		for _, c := range regionVotes[cl] {
			if c > best {
				best = c
			}
		}
		agree += best
	}
	res.RegionPurity = float64(agree) / float64(len(kept))
	return res, nil
}

// Render gives the terminal rendition of Figure 1.
func (r *Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — Ward dendrogram of %d news-event cascades (Jaccard distance)\n", r.Sampled)
	b.WriteString("top inner nodes (Ward distance , cascades in cluster):\n")
	for _, m := range r.TopMerges {
		fmt.Fprintf(&b, "  %.1f , %d\n", m.Height, m.Size)
	}
	if r.Dendro != nil {
		b.WriteString("dendrogram (top levels):\n")
		b.WriteString(r.Dendro.RenderDendrogram(4))
	}
	fmt.Fprintf(&b, "flat cut cluster sizes: %v\n", r.ClusterSizes)
	fmt.Fprintf(&b, "cluster-vs-region purity: %.3f (paper: clusters correspond to regions)\n", r.RegionPurity)
	return b.String()
}

// Figure2Result reproduces Figure 2: the backbone network of news sites
// that co-reported at least MinShared events, with its regional block
// structure quantified.
type Figure2Result struct {
	MinShared     int
	Nodes, Edges  int
	Components    int
	IntraRegional float64 // fraction of backbone edges inside one region
}

// Figure2 builds the co-reporting backbone.
func Figure2(ds *gdelt.Dataset, minShared int) (*Figure2Result, error) {
	bb, err := ds.Backbone(minShared)
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{MinShared: minShared}
	active := map[int]bool{}
	same, cross := 0, 0
	for _, e := range bb.Edges() {
		active[e.From] = true
		active[e.To] = true
		if ds.RegionOf(e.From) == ds.RegionOf(e.To) {
			same++
		} else {
			cross++
		}
	}
	res.Nodes = len(active)
	res.Edges = bb.M() / 2 // backbone is symmetric
	if same+cross > 0 {
		res.IntraRegional = float64(same) / float64(same+cross)
	}
	_, res.Components = bb.ConnectedComponents()
	return res, nil
}

// Render gives the terminal rendition of Figure 2.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — co-reporting backbone (pairs sharing >= %d events)\n", r.MinShared)
	fmt.Fprintf(&b, "active sites: %d, edges: %d, connected components: %d\n", r.Nodes, r.Edges, r.Components)
	fmt.Fprintf(&b, "intra-regional edge fraction: %.3f (paper: regional clusters dominate)\n", r.IntraRegional)
	return b.String()
}

// Figure3Result reproduces Figure 3: the histogram of events reported
// per site on log-spaced bins, with the fitted power-law exponent — the
// Matthew effect.
type Figure3Result struct {
	Bins  []stats.Bin
	Alpha float64 // MLE power-law exponent over the tail
	// MinCount mirrors the paper's cutoff (sites reporting fewer events
	// are ignored).
	MinCount int
}

// Figure3 histograms per-site report counts. minCount mirrors the
// paper's >= 5,000-events cutoff, scaled to the synthetic corpus.
func Figure3(ds *gdelt.Dataset, minCount, bins int) (*Figure3Result, error) {
	counts := ds.ReportCounts()
	var xs []float64
	for _, c := range counts {
		if c >= minCount && c > 0 {
			xs = append(xs, float64(c))
		}
	}
	if len(xs) < 10 {
		return nil, fmt.Errorf("experiments: only %d sites above cutoff %d", len(xs), minCount)
	}
	hist, err := stats.LogHistogram(xs, bins)
	if err != nil {
		return nil, err
	}
	// Fit the exponent over the tail above the median count.
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	alpha, err := stats.PowerLawAlphaMLE(xs, stats.Quantile(sorted, 0.5))
	if err != nil {
		return nil, err
	}
	return &Figure3Result{Bins: hist, Alpha: alpha, MinCount: minCount}, nil
}

// Render gives the terminal rendition of Figure 3.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — histogram of events reported per site (cutoff >= %d)\n", r.MinCount)
	labels := make([]string, len(r.Bins))
	counts := make([]int, len(r.Bins))
	for i, bin := range r.Bins {
		labels[i] = fmt.Sprintf("%6.0f-%6.0f", bin.Lo, bin.Hi)
		counts[i] = bin.Count
	}
	b.WriteString(report.ASCIIHistogram(labels, counts, 40))
	fmt.Fprintf(&b, "power-law exponent (MLE over tail): %.2f — the Matthew effect\n", r.Alpha)
	return b.String()
}
