package experiments

import (
	"strings"
	"time"

	"viralcast/internal/eval"
	"viralcast/internal/features"
	"viralcast/internal/infer"
	"viralcast/internal/netrate"
	"viralcast/internal/pointproc"
	"viralcast/internal/report"
	"viralcast/internal/svm"
	"viralcast/internal/xrand"
)

// ModelComparison pits the paper's node-embedding inference against the
// link-based baseline it argues against (NetRate-style per-edge rates):
// parameter count, fitting time, and held-out likelihood. This is the
// quantitative backing for the paper's O(n^2)-parameters critique and
// for the abstract's order-of-magnitude speedup claim over link-based
// processing.
type ModelComparison struct {
	Name       string
	Parameters int
	Seconds    float64
	TrainLL    float64
	HeldOutLL  float64
}

// CompareEdgeBaseline fits both models on the same workload. The edge
// baseline's held-out likelihood is evaluated only on its candidate
// edges, which favors it slightly; the node model covers every pair.
func CompareEdgeBaseline(e SBMExperiment) ([]ModelComparison, error) {
	w, err := BuildSBMWorkload(e)
	if err != nil {
		return nil, err
	}
	var out []ModelComparison

	start := time.Now()
	nodeM, _, _, err := infer.Pipeline(w.Train, e.N, infer.Config{
		K: e.InferK, MaxIter: e.MaxIter, Seed: e.Seed + 1,
	}, infer.PipelineOptions{
		Cooccur:  cooccurOptions(),
		SLPA:     slpaOptions(),
		Parallel: infer.ParallelOptions{Workers: e.Workers},
	})
	if err != nil {
		return nil, err
	}
	out = append(out, ModelComparison{
		Name:       "node-embeddings",
		Parameters: 2 * e.N * e.InferK,
		Seconds:    time.Since(start).Seconds(),
		TrainLL:    nodeM.LogLikAll(w.Train),
		HeldOutLL:  nodeM.LogLikAll(w.Test),
	})

	start = time.Now()
	edgeM, lls, err := netrate.Fit(w.Train, e.N, netrate.Config{
		MinPairCount: 2, MaxIter: e.MaxIter, Seed: e.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	_ = lls
	out = append(out, ModelComparison{
		Name:       "edge-rates (NetRate-style)",
		Parameters: edgeM.NumEdges(),
		Seconds:    time.Since(start).Seconds(),
		TrainLL:    edgeM.LogLikAll(w.Train),
		HeldOutLL:  edgeM.LogLikAll(w.Test),
	})
	return out, nil
}

// PredictorComparison scores the paper's embedding-feature SVM against
// the two baseline families §V surveys: the topology-free self-exciting
// point process (SEISMIC-style) and the raw early-count heuristic.
type PredictorComparison struct {
	Name      string
	F1        float64
	Accuracy  float64
	Threshold int
}

// ComparePredictors evaluates all three predictors on the same SBM
// workload at the top-20% virality threshold.
func ComparePredictors(e SBMExperiment) ([]PredictorComparison, error) {
	w, err := BuildSBMWorkload(e)
	if err != nil {
		return nil, err
	}
	model, _, err := w.FitEmbeddings()
	if err != nil {
		return nil, err
	}
	sets, sizes, err := w.PredictionData(model)
	if err != nil {
		return nil, err
	}
	threshold := eval.TopFractionThreshold(sizes, 0.2)
	var out []PredictorComparison

	if conf, err := PredictF1(sets, sizes, threshold, nil, 10, e.Seed+21); err == nil {
		out = append(out, PredictorComparison{
			Name: "embedding features + SVM", F1: conf.F1(), Accuracy: conf.Accuracy(), Threshold: threshold,
		})
	}
	if conf, err := PredictF1(sets, sizes, threshold, []string{"earlyCount", "earlyRate"}, 10, e.Seed+21); err == nil {
		out = append(out, PredictorComparison{
			Name: "early-count features + SVM", F1: conf.F1(), Accuracy: conf.Accuracy(), Threshold: threshold,
		})
	}
	// Topology features (paper §V's first baseline family, refs [20-21]):
	// requires the true propagation graph and communities, which the
	// synthetic workload knows but a GDELT-like deployment would not.
	topoSets, topoSizes, err := features.ExtractTopoAll(w.Graph, w.Membership, w.Test, w.EarlyCutoff())
	if err == nil && len(topoSets) > 0 {
		x := make([][]float64, len(topoSets))
		for i, ts := range topoSets {
			x[i] = ts.Vector()
		}
		y := eval.LabelsBySizeThreshold(topoSizes, threshold)
		trainer := func(trX [][]float64, trY []int) (func([]float64) int, error) {
			std, err := svm.FitStandardizer(trX)
			if err != nil {
				return nil, err
			}
			model, err := svm.TrainBestF1(std.Apply(trX), trY,
				svm.Options{Seed: e.Seed + 23, Epochs: 60}, nil, xrand.New(e.Seed+23))
			if err != nil {
				return nil, err
			}
			return func(row []float64) int {
				return model.Predict(std.Apply([][]float64{row})[0])
			}, nil
		}
		if conf, err := eval.CrossValidate(x, y, 10, trainer, xrand.New(e.Seed+23)); err == nil {
			out = append(out, PredictorComparison{
				Name: "topology features + SVM (needs the hidden graph)",
				F1:   conf.F1(), Accuracy: conf.Accuracy(), Threshold: threshold,
			})
		}
	}

	// Point process: fit on the training cascades (full observations),
	// classify the test cascades.
	pp, err := pointproc.Fit(w.Train, w.EarlyCutoff())
	if err != nil {
		return nil, err
	}
	labels := pp.Classify(w.Test, threshold)
	var truth, pred []int
	for i, c := range w.Test {
		l, ok := labels[i]
		if !ok {
			continue
		}
		if c.Size() >= threshold {
			truth = append(truth, 1)
		} else {
			truth = append(truth, -1)
		}
		pred = append(pred, l)
	}
	if conf, err := eval.Confuse(truth, pred); err == nil {
		out = append(out, PredictorComparison{
			Name: "self-exciting point process", F1: conf.F1(), Accuracy: conf.Accuracy(), Threshold: threshold,
		})
	}
	return out, nil
}

// RenderPredictorComparison renders the predictor-family comparison.
func RenderPredictorComparison(rows []PredictorComparison) string {
	var b strings.Builder
	b.WriteString("Baseline — predictor families at the top-20% threshold\n")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Name,
			report.FormatFloat(r.F1, 3),
			report.FormatFloat(r.Accuracy, 3),
		}
	}
	b.WriteString(report.Table([]string{"predictor", "F1", "accuracy"}, table))
	return b.String()
}

// RenderModelComparison renders the node-vs-edge comparison.
func RenderModelComparison(rows []ModelComparison) string {
	var b strings.Builder
	b.WriteString("Baseline — node embeddings vs per-edge rates\n")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Name,
			report.FormatFloat(float64(r.Parameters), 0),
			report.FormatFloat(r.Seconds, 2),
			report.FormatFloat(r.TrainLL, 1),
			report.FormatFloat(r.HeldOutLL, 1),
		}
	}
	b.WriteString(report.Table(
		[]string{"model", "parameters", "seconds", "train-loglik", "heldout-loglik"}, table))
	return b.String()
}
