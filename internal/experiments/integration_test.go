package experiments

import (
	"testing"

	"viralcast/internal/stats"
)

// TestEndToEndInfluenceRecovery is the repository's broadest integration
// check: build a workload with planted Pareto influence, run the full
// inference pipeline on the raw cascades alone, and verify the inferred
// per-node influence mass correlates positively with the planted ground
// truth — the property the paper's influencer-identification application
// (§I, §VII) depends on.
//
// Note the deliberate contrast probed here: raw activity (how often a
// node appears in cascades) is NOT influence — most appearances are as a
// receiver — and in near-critical regimes the planted influence itself
// correlates only weakly with follower counts. The embedding method must
// track the planted influence, not the activity.
func TestEndToEndInfluenceRecovery(t *testing.T) {
	e := DefaultSBM()
	e.N = 600
	e.Cascades = 900
	e.Train = 700
	e.MaxIter = 15
	w, err := BuildSBMWorkload(e)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := w.FitEmbeddings()
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, e.N)
	for _, c := range w.Train {
		for _, inf := range c.Infections {
			counts[inf.Node]++
		}
	}
	var inferred, planted []float64
	for u := 0; u < e.N; u++ {
		if counts[u] < 3 {
			continue // unobservable nodes carry no signal either way
		}
		var im, pm float64
		for k := 0; k < m.K(); k++ {
			im += m.A.At(u, k)
		}
		for k := 0; k < w.Truth.K(); k++ {
			pm += w.Truth.A.At(u, k)
		}
		inferred = append(inferred, im)
		planted = append(planted, pm)
	}
	if len(inferred) < 100 {
		t.Fatalf("only %d observable nodes", len(inferred))
	}
	r := stats.Spearman(inferred, planted)
	t.Logf("influence recovery: Spearman %.3f over %d observable nodes", r, len(inferred))
	if r < 0.2 {
		t.Errorf("inferred influence uncorrelated with planted truth: Spearman %.3f", r)
	}
}
