package experiments

import (
	"fmt"
	"sort"
	"strings"

	"viralcast/internal/cooccur"
	"viralcast/internal/eval"
	"viralcast/internal/features"
	"viralcast/internal/report"
	"viralcast/internal/slpa"
	"viralcast/internal/stats"
)

// cooccurOptions/slpaOptions are the shared pipeline settings: prune rare
// co-occurrences, skip the quadratic pair blow-up of giant cascades, and
// fold SLPA fragments into usable work units.
func cooccurOptions() cooccur.Options {
	return cooccur.Options{MinPairCount: 2, MaxCascadeSize: 200}
}

func slpaOptions() slpa.Options {
	return slpa.Options{Iterations: 30, MinCommunitySize: 8}
}

// FeatureScatterResult reproduces Figures 6, 7 and 8: for each test
// cascade, one point per feature with the final cascade size on the y
// axis, plus the feature/size correlations that quantify the "grows
// almost linearly" claim.
type FeatureScatterResult struct {
	DiverA, NormA, MaxA []report.Point
	// Spearman rank correlations between each feature and the final size.
	CorrDiverA, CorrNormA, CorrMaxA float64
}

// Figure9Result reproduces Figure 9: the histogram of test-cascade sizes
// and the F1-measure of the virality classifier as the size threshold
// sweeps across the distribution. TopFracF1 reports the paper's headline
// number — F1 when the top 20% of cascades are labeled viral.
type Figure9Result struct {
	SizeHist   []stats.Bin
	Thresholds []int
	F1         []float64
	TopFracF1  float64
	TopFracThr int
	// TopFracAUC is the threshold-free companion metric at the top-20%
	// threshold (not in the paper; reported for completeness).
	TopFracAUC float64
}

// Figures6to9 runs the full SBM prediction study once and derives all
// four figures from it.
func Figures6to9(e SBMExperiment) (*FeatureScatterResult, *Figure9Result, error) {
	w, err := BuildSBMWorkload(e)
	if err != nil {
		return nil, nil, err
	}
	model, _, err := w.FitEmbeddings()
	if err != nil {
		return nil, nil, err
	}
	sets, sizes, err := w.PredictionData(model)
	if err != nil {
		return nil, nil, err
	}
	if len(sets) == 0 {
		return nil, nil, fmt.Errorf("experiments: no test cascades usable for prediction")
	}
	scatter := &FeatureScatterResult{}
	var fDiver, fNorm, fMax, fSize []float64
	for i, s := range sets {
		y := float64(sizes[i])
		scatter.DiverA = append(scatter.DiverA, report.Point{X: s.DiverA, Y: y})
		scatter.NormA = append(scatter.NormA, report.Point{X: s.NormA, Y: y})
		scatter.MaxA = append(scatter.MaxA, report.Point{X: s.MaxA, Y: y})
		fDiver = append(fDiver, s.DiverA)
		fNorm = append(fNorm, s.NormA)
		fMax = append(fMax, s.MaxA)
		fSize = append(fSize, y)
	}
	scatter.CorrDiverA = stats.Spearman(fDiver, fSize)
	scatter.CorrNormA = stats.Spearman(fNorm, fSize)
	scatter.CorrMaxA = stats.Spearman(fMax, fSize)

	fig9, err := figure9(sets, sizes, e.Seed)
	if err != nil {
		return nil, nil, err
	}
	return scatter, fig9, nil
}

// figure9 sweeps size thresholds across the distribution and evaluates
// the classifier at each (paper: "We use different number of nodes as
// the threshold for the binary classification and plot the F1-measure").
func figure9(sets []features.Set, sizes []int, seed uint64) (*Figure9Result, error) {
	out := &Figure9Result{}
	var err error
	out.SizeHist, err = histogramOfSizes(sizes, 15)
	if err != nil {
		return nil, err
	}
	// Threshold grid: deciles of the size distribution (deduplicated),
	// skipping degenerate single-class tasks.
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	seen := map[int]bool{}
	for _, q := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95} {
		th := sorted[int(q*float64(len(sorted)-1))]
		if th < 2 || seen[th] {
			continue
		}
		seen[th] = true
		conf, err := PredictF1(sets, sizes, th, nil, 10, seed+7)
		if err != nil {
			continue // single-class task at this threshold
		}
		out.Thresholds = append(out.Thresholds, th)
		out.F1 = append(out.F1, conf.F1())
	}
	if len(out.Thresholds) == 0 {
		return nil, fmt.Errorf("experiments: no usable thresholds (size distribution too degenerate)")
	}
	out.TopFracThr = eval.TopFractionThreshold(sizes, 0.2)
	if conf, err := PredictF1(sets, sizes, out.TopFracThr, nil, 10, seed+7); err == nil {
		out.TopFracF1 = conf.F1()
	}
	if auc, err := PredictAUC(sets, sizes, out.TopFracThr, nil, 10, seed+7); err == nil {
		out.TopFracAUC = auc
	}
	return out, nil
}

func histogramOfSizes(sizes []int, bins int) ([]stats.Bin, error) {
	xs := make([]float64, len(sizes))
	for i, s := range sizes {
		xs[i] = float64(s)
	}
	return stats.Histogram(xs, bins)
}

// Render gives the terminal rendition of Figures 6-8.
func (r *FeatureScatterResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6 — diverA of early adopters vs final cascade size\n")
	b.WriteString(report.ASCIIScatter(r.DiverA, 60, 14))
	fmt.Fprintf(&b, "Spearman(diverA, size) = %.3f\n\n", r.CorrDiverA)
	b.WriteString("Figure 7 — normA of early adopters vs final cascade size\n")
	b.WriteString(report.ASCIIScatter(r.NormA, 60, 14))
	fmt.Fprintf(&b, "Spearman(normA, size) = %.3f\n\n", r.CorrNormA)
	b.WriteString("Figure 8 — maxA of early adopters vs final cascade size\n")
	b.WriteString(report.ASCIIScatter(r.MaxA, 60, 14))
	fmt.Fprintf(&b, "Spearman(maxA, size) = %.3f\n", r.CorrMaxA)
	return b.String()
}

// CSV emits the scatter series (one row per test cascade).
func (r *FeatureScatterResult) CSV() ([]string, [][]float64) {
	header := []string{"diverA", "normA", "maxA", "finalSize"}
	rows := make([][]float64, len(r.DiverA))
	for i := range r.DiverA {
		rows[i] = []float64{r.DiverA[i].X, r.NormA[i].X, r.MaxA[i].X, r.DiverA[i].Y}
	}
	return header, rows
}

// Render gives the terminal rendition of Figure 9.
func (r *Figure9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9 — cascade-size histogram and prediction F1 vs threshold\n")
	labels := make([]string, len(r.SizeHist))
	counts := make([]int, len(r.SizeHist))
	for i, bin := range r.SizeHist {
		labels[i] = fmt.Sprintf("%4.0f-%4.0f", bin.Lo, bin.Hi)
		counts[i] = bin.Count
	}
	b.WriteString(report.ASCIIHistogram(labels, counts, 40))
	b.WriteString("\nthreshold  F1\n")
	for i, th := range r.Thresholds {
		fmt.Fprintf(&b, "%9d  %.3f\n", th, r.F1[i])
	}
	fmt.Fprintf(&b, "\nTop-20%% task: threshold=%d F1=%.3f AUC=%.3f (paper reports F1~0.80)\n",
		r.TopFracThr, r.TopFracF1, r.TopFracAUC)
	return b.String()
}

// CSV emits the F1-vs-threshold series.
func (r *Figure9Result) CSV() ([]string, [][]float64) {
	header := []string{"threshold", "f1"}
	rows := make([][]float64, len(r.Thresholds))
	for i := range r.Thresholds {
		rows[i] = []float64{float64(r.Thresholds[i]), r.F1[i]}
	}
	return header, rows
}
