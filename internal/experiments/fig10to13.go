package experiments

import (
	"fmt"
	"strings"
	"time"

	"viralcast/internal/cooccur"
	"viralcast/internal/infer"
	"viralcast/internal/mergetree"
	"viralcast/internal/report"
	"viralcast/internal/slpa"
	"viralcast/internal/xrand"
)

// ScalingExperiment configures the parallel-performance studies of
// Figures 10, 11 and 13. The paper runs the hierarchical inference on
// SBM graphs with core counts 1, 2, 4, 8, 16, 32 and 64.
//
// Methodology note (documented in DESIGN.md and EXPERIMENTS.md): the
// per-community tasks of Algorithm 1 are measured individually, then the
// runtime for w workers is the per-level LPT makespan of those task
// durations plus a per-level barrier cost that grows linearly with w.
// This reproduces the schedule a w-core machine executes regardless of
// how many physical cores the measuring host has (the reference host for
// this repository has a single core, where goroutine wall-clock speedup
// is unobservable by construction).
type ScalingExperiment struct {
	Cores []int
	// Q is Algorithm 2's community-count stopping threshold. The paper's
	// scalability runs stop the hierarchy while several communities
	// remain (the serial root polish would otherwise bound the speedup);
	// the accuracy experiments use Q=1 instead.
	Q int
	// BarrierCost is charged per worker per level — the communication /
	// synchronization overhead the paper identifies as the reason the
	// speedup flattens between 32 and 64 cores.
	BarrierCost time.Duration
	MaxIter     int
	InferK      int
	Seed        uint64
}

// DefaultScaling mirrors the paper's core grid.
func DefaultScaling() ScalingExperiment {
	return ScalingExperiment{
		Cores:       []int{1, 2, 4, 8, 16, 32, 64},
		Q:           10,
		BarrierCost: 50 * time.Microsecond,
		MaxIter:     20,
		InferK:      4,
		Seed:        1,
	}
}

// ScalingSeries is one curve of a scaling figure: runtime per core count
// for one workload.
type ScalingSeries struct {
	Label   string
	N       int // nodes in the SBM graph
	C       int // cascades processed
	Cores   []int
	Seconds []float64
}

// Speedup returns s_w = t_1/t_w for every core count (paper Eq. 20).
func (s *ScalingSeries) Speedup() []float64 {
	out := make([]float64, len(s.Seconds))
	if len(s.Seconds) == 0 || s.Seconds[0] <= 0 {
		return out
	}
	for i, sec := range s.Seconds {
		if sec > 0 {
			out[i] = s.Seconds[0] / sec
		}
	}
	return out
}

// Efficiency returns e_w = s_w / w (paper Eq. 21).
func (s *ScalingSeries) Efficiency() []float64 {
	sp := s.Speedup()
	out := make([]float64, len(sp))
	for i, v := range sp {
		out[i] = v / float64(s.Cores[i])
	}
	return out
}

// runScalingWorkload profiles the full hierarchical inference for one
// (N, C) workload and converts the profile into a runtime series.
func runScalingWorkload(sc ScalingExperiment, n, cascades int, label string) (*ScalingSeries, error) {
	e := DefaultSBM()
	e.N = n
	e.Cascades = cascades + 1 // all but one train; the split is irrelevant here
	e.Train = cascades
	e.Seed = sc.Seed
	w, err := BuildSBMWorkload(e)
	if err != nil {
		return nil, err
	}
	g, err := cooccur.Build(w.Train, n, cooccurOptions())
	if err != nil {
		return nil, err
	}
	part := slpa.Detect(g, slpaOptions(), xrand.New(sc.Seed^0x51a9))
	cfg := infer.Config{K: sc.InferK, MaxIter: sc.MaxIter, Seed: sc.Seed + 1}
	q := sc.Q
	if q < 1 {
		q = 1
	}
	_, profiles, err := infer.HierarchicalProfiled(w.Train, n, part, cfg, q, mergetree.ByCommunityCount)
	if err != nil {
		return nil, err
	}
	series := &ScalingSeries{Label: label, N: n, C: cascades, Cores: sc.Cores}
	for _, cores := range sc.Cores {
		series.Seconds = append(series.Seconds,
			infer.ScheduleCost(profiles, cores, sc.BarrierCost).Seconds())
	}
	return series, nil
}

// Figure10 measures runtime vs cores for C in {1000, 2000, 3000}
// cascades on an SBM graph with n nodes (paper: n=2000).
func Figure10(sc ScalingExperiment, n int, cascadeCounts []int) ([]*ScalingSeries, error) {
	if len(cascadeCounts) == 0 {
		cascadeCounts = []int{1000, 2000, 3000}
	}
	var out []*ScalingSeries
	for _, c := range cascadeCounts {
		s, err := runScalingWorkload(sc, n, c, fmt.Sprintf("C=%d", c))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure11 measures runtime vs cores for N in {1000, 2000, 4000} nodes
// at a fixed cascade count (paper: C=2000). The paper's observation:
// runtime is nearly independent of N because the algorithm's work is
// linear in total infections, not in graph size.
func Figure11(sc ScalingExperiment, nodeCounts []int, cascades int) ([]*ScalingSeries, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1000, 2000, 4000}
	}
	var out []*ScalingSeries
	for _, n := range nodeCounts {
		s, err := runScalingWorkload(sc, n, cascades, fmt.Sprintf("N=%d", n))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure13 derives the speedup and efficiency curves from Figure 10's
// series (the paper derives them from the same runs).
type Figure13Result struct {
	Series []*ScalingSeries
}

// RenderScaling renders runtime-vs-cores series (Figures 10 and 11).
func RenderScaling(title string, series []*ScalingSeries) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	rows := make([][]string, 0)
	for _, s := range series {
		for i, cores := range s.Cores {
			rows = append(rows, []string{
				s.Label,
				fmt.Sprintf("%d", cores),
				report.FormatFloat(s.Seconds[i], 3),
			})
		}
	}
	b.WriteString(report.Table([]string{"workload", "cores", "seconds"}, rows))
	var lines []report.Series
	for _, s := range series {
		var pts []report.Point
		for i, cores := range s.Cores {
			pts = append(pts, report.Point{X: float64(cores), Y: s.Seconds[i]})
		}
		lines = append(lines, report.Series{Name: s.Label, Points: pts})
	}
	b.WriteString(report.ASCIILines(lines, 60, 12))
	return b.String()
}

// Render renders Figure 13 (speedup and efficiency).
func (r *Figure13Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13 — speedup s_n = t_1/t_n and efficiency e_n = s_n/n\n")
	rows := make([][]string, 0)
	for _, s := range r.Series {
		sp, ef := s.Speedup(), s.Efficiency()
		for i, cores := range s.Cores {
			rows = append(rows, []string{
				s.Label,
				fmt.Sprintf("%d", cores),
				report.FormatFloat(sp[i], 2),
				report.FormatFloat(ef[i], 3),
			})
		}
	}
	b.WriteString(report.Table([]string{"workload", "cores", "speedup", "efficiency"}, rows))
	return b.String()
}

// CSVScaling emits the runtime series for a scaling figure.
func CSVScaling(series []*ScalingSeries) ([]string, [][]float64) {
	header := []string{"n", "cascades", "cores", "seconds", "speedup", "efficiency"}
	var rows [][]float64
	for _, s := range series {
		sp, ef := s.Speedup(), s.Efficiency()
		for i, cores := range s.Cores {
			rows = append(rows, []float64{
				float64(s.N), float64(s.C), float64(cores), s.Seconds[i], sp[i], ef[i],
			})
		}
	}
	return header, rows
}
