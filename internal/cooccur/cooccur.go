// Package cooccur builds the frequent co-occurrence graph that drives the
// paper's community-based parallelization (§IV-B): for nodes u and v, the
// directed edge weight is
//
//	w(u,v) = 2*c(u,v) / (c(u) + c(v))
//
// where c(u) is the number of cascades containing u and c(u,v) the number
// of cascades in which u is infected before v. Weights lie in [0,1].
package cooccur

import (
	"fmt"

	"viralcast/internal/cascade"
	"viralcast/internal/graph"
)

// Options tunes graph construction.
type Options struct {
	// MinPairCount drops edges whose raw co-occurrence count c(u,v) is
	// below this value; 0 or 1 keeps everything. Large cascade sets
	// benefit from pruning rare co-occurrences before community detection.
	MinPairCount int
	// MaxCascadeSize skips counting pairs within cascades longer than
	// this, protecting against the O(s^2) pair blow-up of a handful of
	// giant cascades. 0 means no limit.
	MaxCascadeSize int
}

// Build constructs the co-occurrence graph over n nodes from the given
// cascades.
func Build(cs []*cascade.Cascade, n int, opt Options) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cooccur: n must be positive, got %d", n)
	}
	nodeCount := make([]int, n)   // c(u)
	pairCount := map[[2]int]int{} // c(u,v), u infected before v
	for _, c := range cs {
		if err := c.Validate(n); err != nil {
			return nil, fmt.Errorf("cooccur: %w", err)
		}
		for _, inf := range c.Infections {
			nodeCount[inf.Node]++
		}
		if opt.MaxCascadeSize > 0 && c.Size() > opt.MaxCascadeSize {
			continue
		}
		infs := c.Infections
		for i := 0; i < len(infs); i++ {
			for j := i + 1; j < len(infs); j++ {
				pairCount[[2]int{infs[i].Node, infs[j].Node}]++
			}
		}
	}
	b := graph.NewBuilder(n)
	for pair, cnt := range pairCount {
		if opt.MinPairCount > 1 && cnt < opt.MinPairCount {
			continue
		}
		u, v := pair[0], pair[1]
		w := 2 * float64(cnt) / float64(nodeCount[u]+nodeCount[v])
		if err := b.AddEdge(u, v, w); err != nil {
			return nil, fmt.Errorf("cooccur: %w", err)
		}
	}
	return b.Build(), nil
}

// NodeCounts returns c(u) for every node: the number of cascades that
// contain it.
func NodeCounts(cs []*cascade.Cascade, n int) []int {
	counts := make([]int, n)
	for _, c := range cs {
		for _, inf := range c.Infections {
			if inf.Node >= 0 && inf.Node < n {
				counts[inf.Node]++
			}
		}
	}
	return counts
}
