package cooccur

import (
	"math"
	"testing"

	"viralcast/internal/cascade"
)

func casc(id int, nodes ...int) *cascade.Cascade {
	c := &cascade.Cascade{ID: id}
	for i, u := range nodes {
		c.Infections = append(c.Infections, cascade.Infection{Node: u, Time: float64(i)})
	}
	return c
}

func TestBuildWeights(t *testing.T) {
	// Node 0 in 2 cascades, node 1 in 2, pair (0 before 1) in 1 cascade.
	cs := []*cascade.Cascade{
		casc(0, 0, 1),
		casc(1, 0),
		casc(2, 1),
	}
	g, err := Build(cs, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, ok := g.Weight(0, 1)
	if !ok {
		t.Fatal("edge (0,1) missing")
	}
	// w = 2*1/(2+2) = 0.5
	if math.Abs(w-0.5) > 1e-12 {
		t.Fatalf("w(0,1) = %v, want 0.5", w)
	}
	if _, ok := g.Weight(1, 0); ok {
		t.Fatal("edge (1,0) must not exist (1 never precedes 0)")
	}
}

func TestBuildDirectionality(t *testing.T) {
	cs := []*cascade.Cascade{casc(0, 2, 1, 0)}
	g, err := Build(cs, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		// Only earlier-infected -> later-infected edges may exist.
		if !(e.From == 2 && (e.To == 1 || e.To == 0)) && !(e.From == 1 && e.To == 0) {
			t.Fatalf("unexpected edge %+v", e)
		}
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
}

func TestBuildWeightRange(t *testing.T) {
	cs := []*cascade.Cascade{
		casc(0, 0, 1, 2),
		casc(1, 0, 1),
		casc(2, 1, 2, 0),
	}
	g, err := Build(cs, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.Weight <= 0 || e.Weight > 1 {
			t.Fatalf("weight out of (0,1]: %+v", e)
		}
	}
}

func TestBuildMinPairCount(t *testing.T) {
	cs := []*cascade.Cascade{
		casc(0, 0, 1),
		casc(1, 0, 1),
		casc(2, 1, 2),
	}
	g, err := Build(cs, 3, Options{MinPairCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Weight(0, 1); !ok {
		t.Error("frequent pair dropped")
	}
	if _, ok := g.Weight(1, 2); ok {
		t.Error("rare pair kept despite MinPairCount")
	}
}

func TestBuildMaxCascadeSize(t *testing.T) {
	cs := []*cascade.Cascade{
		casc(0, 0, 1, 2, 3), // size 4, skipped for pairs
		casc(1, 0, 1),
	}
	g, err := Build(cs, 4, Options{MaxCascadeSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Weight(2, 3); ok {
		t.Error("pair from oversized cascade kept")
	}
	if w, ok := g.Weight(0, 1); !ok {
		t.Error("pair from small cascade dropped")
	} else {
		// c(0)=2, c(1)=2 (node counts include the big cascade), c(0,1)=1.
		if math.Abs(w-2.0/4.0) > 1e-12 {
			t.Errorf("w(0,1) = %v, want 0.5", w)
		}
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := Build(nil, 0, Options{}); err == nil {
		t.Error("n=0 accepted")
	}
	bad := &cascade.Cascade{Infections: []cascade.Infection{{Node: 9, Time: 0}}}
	if _, err := Build([]*cascade.Cascade{bad}, 3, Options{}); err == nil {
		t.Error("out-of-range cascade accepted")
	}
}

func TestNodeCounts(t *testing.T) {
	cs := []*cascade.Cascade{casc(0, 0, 1), casc(1, 1)}
	counts := NodeCounts(cs, 3)
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 0 {
		t.Fatalf("NodeCounts = %v", counts)
	}
}

func BenchmarkBuild(b *testing.B) {
	// 500 synthetic cascades of ~30 nodes each.
	var cs []*cascade.Cascade
	node := 0
	for i := 0; i < 500; i++ {
		c := &cascade.Cascade{ID: i}
		for j := 0; j < 30; j++ {
			c.Infections = append(c.Infections,
				cascade.Infection{Node: (node + j*7) % 800, Time: float64(j)})
		}
		// Deduplicate by construction: stride 7 over 800 nodes with 30 steps
		// never repeats within a cascade.
		node = (node + 13) % 800
		cs = append(cs, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(cs, 800, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
