package core

import (
	"bytes"
	"strings"
	"testing"

	"viralcast/internal/cascade"
	"viralcast/internal/embed"
	"viralcast/internal/eval"
	"viralcast/internal/sbm"
	"viralcast/internal/xrand"
)

// workload simulates cascades from a planted model on a small SBM graph.
func workload(t *testing.T, n, count int, seed uint64) []*cascade.Cascade {
	t.Helper()
	rng := xrand.New(seed)
	g, _, err := sbm.Generate(sbm.Params{N: n, BlockSize: 20, Alpha: 0.3, Beta: 0.01}, rng)
	if err != nil {
		t.Fatal(err)
	}
	truth := embed.NewModel(n, 2)
	truth.InitUniform(rng, 0.2, 0.8)
	sim, err := cascade.NewSimulator(g, truth.A, truth.B, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := sim.RunMany(0, count, rng)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestTrain(t *testing.T) {
	cs := workload(t, 80, 150, 1)
	sys, err := Train(cs, 80, TrainConfig{Topics: 2, MaxIter: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sys.N != 80 {
		t.Fatalf("N = %d", sys.N)
	}
	if err := sys.Embeddings.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Partition.Validate(80); err != nil {
		t.Fatal(err)
	}
	if len(sys.Trace.Levels) == 0 {
		t.Fatal("no trace recorded")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 10, TrainConfig{}); err == nil {
		t.Error("empty cascades accepted")
	}
	if _, err := Train(workload(t, 20, 5, 3), 0, TrainConfig{}); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestInfluenceSelectivityRate(t *testing.T) {
	cs := workload(t, 60, 100, 4)
	sys, err := Train(cs, 60, TrainConfig{Topics: 2, MaxIter: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := sys.Influence(3)
	b := sys.Selectivity(4)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("vector lengths %d, %d", len(a), len(b))
	}
	// Returned vectors are copies.
	a[0] = -99
	if sys.Embeddings.A.At(3, 0) == -99 {
		t.Fatal("Influence returned aliasing slice")
	}
	want := sys.Embeddings.Rate(3, 4)
	if got := sys.Rate(3, 4); got != want {
		t.Fatalf("Rate = %v, want %v", got, want)
	}
}

func TestTopInfluencers(t *testing.T) {
	cs := workload(t, 60, 120, 6)
	sys, err := Train(cs, 60, TrainConfig{Topics: 2, MaxIter: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	top := sys.TopInfluencers(5)
	if len(top) != 5 {
		t.Fatalf("got %d influencers", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("influencers not sorted by score")
		}
	}
	// Top influencer should actually have a larger total-A than a random
	// node's (sanity of the ranking semantics).
	all := sys.TopInfluencers(60)
	if all[0].Score < all[59].Score {
		t.Fatal("ranking inverted")
	}
	if top[0].TopTopic < 0 || top[0].TopTopic >= 2 {
		t.Fatalf("TopTopic out of range: %+v", top[0])
	}
}

func TestPredictorRoundtrip(t *testing.T) {
	cs := workload(t, 80, 300, 8)
	train, test := cs[:200], cs[200:]
	sys, err := Train(train, 80, TrainConfig{Topics: 2, MaxIter: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sizes := cascade.Sizes(train)
	thr := eval.TopFractionThreshold(sizes, 0.3)
	if thr < 2 {
		thr = 2
	}
	pred, err := sys.TrainPredictor(train, 0.5, thr)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Threshold() != thr {
		t.Fatalf("Threshold = %d", pred.Threshold())
	}
	conf, err := pred.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	total := conf.TP + conf.FP + conf.TN + conf.FN
	if total == 0 {
		t.Fatal("no cascades evaluated")
	}
	// The classifier must be meaningfully better than coin flipping on
	// this in-distribution task.
	if conf.Accuracy() < 0.5 {
		t.Errorf("accuracy %.3f below chance: %+v", conf.Accuracy(), conf)
	}
}

func TestPredictorErrors(t *testing.T) {
	cs := workload(t, 60, 100, 10)
	sys, err := Train(cs, 60, TrainConfig{Topics: 2, MaxIter: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TrainPredictor(cs, 0, 3); err == nil {
		t.Error("zero cutoff accepted")
	}
	if _, err := sys.TrainPredictor(cs, 0.5, 1<<30); err == nil {
		t.Error("unreachable threshold accepted")
	}
	pred, err := sys.TrainPredictor(cs, 0.5, 3)
	if err != nil {
		t.Skip("workload degenerate for this seed")
	}
	late := &cascade.Cascade{Infections: []cascade.Infection{{Node: 1, Time: 99}}}
	if _, _, err := pred.PredictViral(late); err == nil {
		t.Error("cascade starting after cutoff accepted")
	}
}

func TestFeaturesMethod(t *testing.T) {
	cs := workload(t, 60, 80, 12)
	sys, err := Train(cs, 60, TrainConfig{Topics: 2, MaxIter: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := sys.Features(cs[0].Prefix(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if fs.EarlyCount < 1 {
		t.Fatalf("features = %+v", fs)
	}
}

func TestUpdateRefinesOnNewData(t *testing.T) {
	cs := workload(t, 60, 200, 14)
	old, fresh := cs[:120], cs[120:]
	sys, err := Train(old, 60, TrainConfig{Topics: 2, MaxIter: 8, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Embeddings.LogLikAll(fresh)
	if err := sys.Update(fresh); err != nil {
		t.Fatal(err)
	}
	after := sys.Embeddings.LogLikAll(fresh)
	if after <= before {
		t.Fatalf("Update did not improve new-cascade fit: %v -> %v", before, after)
	}
	if err := sys.Update(nil); err == nil {
		t.Error("empty update accepted")
	}
}

func TestSaveLoadSystem(t *testing.T) {
	cs := workload(t, 60, 120, 16)
	sys, err := Train(cs, 60, TrainConfig{Topics: 2, MaxIter: 6, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveEmbeddings(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSystem(&buf, TrainConfig{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N != 60 {
		t.Fatalf("loaded N = %d", loaded.N)
	}
	if sys.Embeddings.A.FrobeniusDist(loaded.Embeddings.A) != 0 {
		t.Fatal("loaded embeddings differ")
	}
	// The loaded system must support the full inference-time surface.
	if top := loaded.TopInfluencers(3); len(top) != 3 {
		t.Fatal("TopInfluencers on loaded system failed")
	}
	pred, err := loaded.TrainPredictor(cs, 0.5, 3)
	if err != nil {
		t.Skipf("workload degenerate for predictor: %v", err)
	}
	if _, _, err := pred.PredictViral(cs[0]); err != nil {
		t.Fatal(err)
	}
}

func TestSelectSeeds(t *testing.T) {
	cs := workload(t, 60, 150, 18)
	sys, err := Train(cs, 60, TrainConfig{Topics: 2, MaxIter: 8, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := sys.SelectSeeds(3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("selected %d seeds", len(seeds))
	}
	ids := make([]int, len(seeds))
	for i, s := range seeds {
		ids[i] = s.Node
	}
	cov, err := sys.ExpectedCoverage(ids, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d := cov - seeds[len(seeds)-1].Total; d > 1e-6 || d < -1e-6 {
		t.Fatalf("coverage mismatch: %v vs %v", cov, seeds[len(seeds)-1].Total)
	}
	// Greedy seeds must beat the three least-influential nodes.
	bottom := sys.TopInfluencers(60)
	worst := []int{bottom[57].Node, bottom[58].Node, bottom[59].Node}
	worstCov, err := sys.ExpectedCoverage(worst, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if cov <= worstCov {
		t.Errorf("greedy coverage %v <= bottom-influencer coverage %v", cov, worstCov)
	}
}

func TestSaveEmbeddingsIsVersioned(t *testing.T) {
	cs := workload(t, 60, 120, 16)
	sys, err := Train(cs, 60, TrainConfig{Topics: 2, MaxIter: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveEmbeddings(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), embed.SignedMagic+"\n") {
		t.Fatalf("SaveEmbeddings output lacks the version envelope: %q",
			strings.SplitN(buf.String(), "\n", 2)[0])
	}

	// Foreign files are rejected with a clear error.
	if _, err := LoadSystem(strings.NewReader("%PDF-1.4 not a model\n"), TrainConfig{}); err == nil ||
		!strings.Contains(err.Error(), "not a viralcast embeddings file") {
		t.Errorf("foreign load err = %v", err)
	}
	// So are truncated ones.
	trunc := buf.Bytes()[:buf.Len()-25]
	if _, err := LoadSystem(bytes.NewReader(trunc), TrainConfig{}); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated load err = %v", err)
	}
	// Legacy bare-CSV files from before the envelope still load.
	var legacy bytes.Buffer
	if err := sys.Embeddings.Write(&legacy); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSystem(&legacy, TrainConfig{})
	if err != nil {
		t.Fatalf("legacy CSV rejected: %v", err)
	}
	if loaded.N != 60 {
		t.Fatalf("legacy load N = %d", loaded.N)
	}
}

func TestForkIsolatesEmbeddings(t *testing.T) {
	cs := workload(t, 60, 140, 21)
	sys, err := Train(cs, 60, TrainConfig{Topics: 2, MaxIter: 4, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Embeddings.Clone()
	fork := sys.Fork()
	if fork.N != sys.N || fork.Embeddings == sys.Embeddings {
		t.Fatal("Fork must copy the embeddings into a distinct model")
	}
	if err := fork.Update(cs[:40]); err != nil {
		t.Fatal(err)
	}
	if sys.Embeddings.A.FrobeniusDist(before.A) != 0 ||
		sys.Embeddings.B.FrobeniusDist(before.B) != 0 {
		t.Fatal("updating the fork mutated the original system")
	}
	if fork.Embeddings.A.FrobeniusDist(before.A) == 0 &&
		fork.Embeddings.B.FrobeniusDist(before.B) == 0 {
		t.Fatal("Update on the fork changed nothing")
	}
}

func TestNewSystemWrapsModel(t *testing.T) {
	m := embed.NewModel(5, 3)
	rng := xrand.New(1)
	m.InitUniform(rng, 0.1, 0.5)
	sys := NewSystem(m, TrainConfig{Seed: 9})
	if sys.N != 5 || sys.Embeddings.K() != 3 {
		t.Fatalf("NewSystem = %d nodes x %d topics", sys.N, sys.Embeddings.K())
	}
	if sys.Rate(0, 1) <= 0 {
		t.Fatal("wrapped system cannot serve rates")
	}
	if top := sys.TopInfluencers(2); len(top) != 2 {
		t.Fatal("wrapped system cannot rank influencers")
	}
}
