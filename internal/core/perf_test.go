// Compute-plane tests and benchmarks: the parallel heap-based
// influencer ranking must be byte-identical to the sequential full-sort
// reference for every k and worker count, and BenchmarkTopInfluencers
// tracks the speedup of the optimized path over that reference
// (scripts/bench.sh records both in BENCH_serve.json).
package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"viralcast/internal/embed"
	"viralcast/internal/xrand"
)

// tieSystem builds a system whose embeddings contain deliberate score
// ties (duplicate rows) so the node-id tie-break is actually exercised.
func tieSystem(n, k int, seed uint64) *System {
	m := embed.NewModel(n, k)
	m.InitUniform(xrand.New(seed), 0, 1)
	// Duplicate every 7th row from its predecessor: equal Score, equal
	// TopWeight, ranking must fall back to the smaller node id.
	for u := 7; u < n; u += 7 {
		copy(m.A.Row(u), m.A.Row(u-7))
	}
	// A few all-zero rows: Score 0, TopTopic 0, TopWeight 0 — and
	// zero-mass skip rows for the seed-selection shortcuts.
	for u := 5; u < n; u += 31 {
		row := m.A.Row(u)
		for i := range row {
			row[i] = 0
		}
	}
	return NewSystem(m, TrainConfig{})
}

func TestTopInfluencersMatchesFullSortReference(t *testing.T) {
	const n = 500
	sys := tieSystem(n, 3, 41)
	ctx := context.Background()
	for _, k := range []int{0, 1, n / 2, n, n + 5} {
		want, err := sys.topInfluencersFullSort(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 4, 8} {
			got, err := sys.topInfluencersRange(ctx, k, workers, 0, sys.N)
			if err != nil {
				t.Fatalf("k=%d workers=%d: %v", k, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d workers=%d: parallel ranking diverges from full-sort reference\n got %v\nwant %v",
					k, workers, got, want)
			}
		}
		// The exported path (auto worker count) must agree too.
		got, err := sys.TopInfluencersCtx(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: TopInfluencersCtx diverges from reference", k)
		}
	}
}

func TestTopInfluencersTieBreaksOnNodeID(t *testing.T) {
	sys := tieSystem(100, 2, 9)
	all, err := sys.TopInfluencersCtx(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(all); i++ {
		prev, cur := all[i-1], all[i]
		if cur.Score > prev.Score {
			t.Fatalf("ranking not sorted by score at %d: %v then %v", i, prev, cur)
		}
		if cur.Score == prev.Score && cur.Node < prev.Node {
			t.Fatalf("tie at score %v not broken by node id: %v then %v", cur.Score, prev, cur)
		}
	}
}

// TestTopInfluencersRangeMergeEqualsGlobal is the sharding lemma the
// routing front-end relies on: partition the node universe into any
// number of contiguous stripes, rank each stripe's top-k independently
// (one "shard" each), and MergeTopInfluencers over the stripe rankings
// must reproduce the single-process global ranking exactly — including
// the deliberate score ties in tieSystem, which must keep breaking
// toward the smaller node id across stripe boundaries.
func TestTopInfluencersRangeMergeEqualsGlobal(t *testing.T) {
	const n = 500
	sys := tieSystem(n, 3, 41)
	ctx := context.Background()
	for _, k := range []int{1, 7, n / 2, n} {
		want, err := sys.TopInfluencersCtx(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 3, 5, 11} {
			parts := make([][]Influencer, shards)
			for i := 0; i < shards; i++ {
				lo, hi := i*n/shards, (i+1)*n/shards
				part, err := sys.TopInfluencersRangeCtx(ctx, k, lo, hi)
				if err != nil {
					t.Fatalf("k=%d shard %d/%d: %v", k, i, shards, err)
				}
				if len(part) > k {
					t.Fatalf("k=%d shard %d/%d: stripe returned %d > k candidates", k, i, shards, len(part))
				}
				for _, inf := range part {
					if inf.Node < lo || inf.Node >= hi {
						t.Fatalf("k=%d shard %d/%d: node %d outside stripe [%d,%d)", k, i, shards, inf.Node, lo, hi)
					}
				}
				parts[i] = part
			}
			got := MergeTopInfluencers(k, parts...)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d shards=%d: merged stripe rankings diverge from the global ranking\n got %v\nwant %v",
					k, shards, got, want)
			}
		}
	}
}

func TestTopInfluencersRangeClampsBounds(t *testing.T) {
	sys := tieSystem(60, 2, 13)
	ctx := context.Background()
	all, err := sys.TopInfluencersRangeCtx(ctx, 60, -10, 999)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.TopInfluencersCtx(ctx, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, want) {
		t.Fatal("clamped out-of-bounds range differs from the full ranking")
	}
	empty, err := sys.TopInfluencersRangeCtx(ctx, 5, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("inverted range returned %d candidates", len(empty))
	}
}

func TestTopInfluencersCancellation(t *testing.T) {
	sys := tieSystem(5000, 2, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.topInfluencersRange(ctx, 10, 4, 0, sys.N); err == nil {
		t.Fatal("canceled context did not abort the parallel ranking")
	}
}

func TestAggregatesInvalidatedByUpdate(t *testing.T) {
	cs := workload(t, 60, 120, 6)
	sys, err := Train(cs, 60, TrainConfig{Topics: 2, MaxIter: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	before, err := sys.TopInfluencersCtx(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Update(cs[:30]); err != nil {
		t.Fatal(err)
	}
	after, err := sys.TopInfluencersCtx(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	// The refinement moves the embeddings, so a correctly invalidated
	// cache must re-derive scores from the new rows.
	want, err := sys.topInfluencersFullSort(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, want) {
		t.Fatal("aggregates served stale scores after Update")
	}
	same := true
	for i := range after {
		if after[i] != before[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Update did not change any influencer score (refinement suspiciously inert)")
	}
}

func TestForkStartsWithFreshAggregates(t *testing.T) {
	sys := tieSystem(80, 2, 5)
	if _, err := sys.TopInfluencersCtx(context.Background(), 10); err != nil {
		t.Fatal(err) // builds the parent's aggregate cache
	}
	fork := sys.Fork()
	if fork.agg.Load() != nil {
		t.Fatal("fork shares the parent's aggregate cache")
	}
	got, err := fork.TopInfluencersCtx(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.TopInfluencersCtx(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fork ranks differently from its identical parent")
	}
}

// benchSystem is the ISSUE-mandated benchmark shape: n=100k nodes, K=16
// topics, k=10 — the scale where the full sort and per-request row scan
// dominate.
func benchSystem(b *testing.B) *System {
	b.Helper()
	m := embed.NewModel(100_000, 16)
	m.InitUniform(xrand.New(1), 0, 1)
	return NewSystem(m, TrainConfig{})
}

func BenchmarkTopInfluencers(b *testing.B) {
	sys := benchSystem(b)
	ctx := context.Background()
	const k = 10
	b.Run("fullsort-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.topInfluencersFullSort(ctx, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The optimized path amortizes the aggregate build across the
	// generation (built once, reused per request) — warm it outside the
	// timer so the benchmark measures the per-request cost, which is
	// what the serving hot path pays.
	sys.aggregates()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("heap-workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sys.topInfluencersRange(ctx, k, w, 0, sys.N); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggregatesBuild prices the once-per-generation precompute
// that the per-request wins above are buying.
func BenchmarkAggregatesBuild(b *testing.B) {
	sys := benchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.invalidateAggregates()
		sys.aggregates()
	}
}
