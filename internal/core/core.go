// Package core ties the paper's pieces into one end-to-end system: fit
// topic-specific influence/selectivity embeddings from observed cascades
// with the community-parallel hierarchical algorithm, then predict the
// virality of new cascades from their early adopters. The root-level
// viralcast package re-exports this API for library consumers; the
// pieces (simulator, inference, clustering, metrics) remain individually
// usable through their own packages.
package core

import (
	"context"
	"fmt"
	"io"
	"sort"

	"viralcast/internal/cascade"
	"viralcast/internal/checkpoint"
	"viralcast/internal/embed"
	"viralcast/internal/eval"
	"viralcast/internal/features"
	"viralcast/internal/infer"
	"viralcast/internal/inflmax"
	"viralcast/internal/slpa"
	"viralcast/internal/svm"
	"viralcast/internal/xrand"
)

// TrainConfig bundles every knob of the end-to-end training pipeline.
// The zero value is completed by sensible defaults.
type TrainConfig struct {
	// Topics is the latent dimension K of the embeddings.
	Topics int
	// MaxIter bounds gradient-ascent epochs per hierarchy level.
	MaxIter int
	// Workers bounds how many communities are optimized concurrently.
	Workers int
	// Q stops the community hierarchy when at most Q communities remain;
	// Q <= 1 ends with a full sequential polish.
	Q int
	// Seed makes the whole pipeline deterministic.
	Seed uint64
	// CheckpointPath, when set, persists training snapshots to this file
	// (atomically: write-temp-then-rename) so an interrupted run can be
	// continued with Resume. A final checkpoint is also written when the
	// training context is canceled mid-fit.
	CheckpointPath string
	// CheckpointEvery is the snapshot cadence in hierarchy levels
	// (sequential polish stages count epochs); values < 1 mean every
	// boundary.
	CheckpointEvery int
	// Resume warm-starts training from the snapshot at CheckpointPath if
	// the file exists; a missing file starts from scratch. The cascades,
	// configuration, and seed must match the interrupted run.
	Resume bool
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Topics <= 0 {
		c.Topics = 4
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 30
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Q < 1 {
		c.Q = 1
	}
	return c
}

// System is a fitted instance of the paper's framework.
type System struct {
	N          int
	Embeddings *embed.Model
	Partition  *slpa.Partition
	Trace      *infer.Trace
	cfg        TrainConfig
}

// Train fits the system on observed cascades over n nodes.
func Train(cs []*cascade.Cascade, n int, cfg TrainConfig) (*System, error) {
	return TrainCtx(context.Background(), cs, n, cfg)
}

// TrainCtx is Train with cancellation and fault tolerance. Canceling ctx
// stops the fit at the next consistency boundary and — if
// cfg.CheckpointPath is set — leaves a durable snapshot behind before
// returning the context's error, so a SIGINT-style shutdown loses no
// more than the level in flight. Rerunning with cfg.Resume continues
// from that snapshot.
func TrainCtx(ctx context.Context, cs []*cascade.Cascade, n int, cfg TrainConfig) (*System, error) {
	cfg = cfg.withDefaults()
	if n <= 0 {
		return nil, fmt.Errorf("core: n must be positive, got %d", n)
	}
	if len(cs) == 0 {
		return nil, fmt.Errorf("core: no training cascades")
	}
	res, err := cfg.resilience()
	if err != nil {
		return nil, err
	}
	inferCfg := infer.Config{K: cfg.Topics, MaxIter: cfg.MaxIter, Seed: cfg.Seed}
	m, part, tr, err := infer.PipelineCtx(ctx, cs, n, inferCfg, infer.PipelineOptions{
		Parallel:   infer.ParallelOptions{Workers: cfg.Workers, Q: cfg.Q},
		Resilience: res,
	})
	if err != nil {
		return nil, err
	}
	return &System{N: n, Embeddings: m, Partition: part, Trace: tr, cfg: cfg}, nil
}

// resilience translates the checkpoint knobs into the inference layer's
// Resilience hooks, loading the resume snapshot if requested.
func (c TrainConfig) resilience() (infer.Resilience, error) {
	res := infer.Resilience{CheckpointEvery: c.CheckpointEvery}
	if c.CheckpointPath == "" {
		if c.Resume {
			return res, fmt.Errorf("core: Resume requires CheckpointPath")
		}
		return res, nil
	}
	path := c.CheckpointPath
	res.Checkpoint = func(st infer.FitState) error {
		return checkpoint.Save(path, &checkpoint.State{
			Model: st.Model, Level: st.Level, Epoch: st.Epoch,
			Step: st.Step, Seed: st.Seed, LogLik: st.LogLik,
		})
	}
	if c.Resume {
		st, err := checkpoint.Resume(path)
		if err != nil {
			return res, err
		}
		if st != nil {
			res.Resume = &infer.FitState{
				Model: st.Model, Level: st.Level, Epoch: st.Epoch,
				Step: st.Step, Seed: st.Seed, LogLik: st.LogLik,
			}
		}
	}
	return res, nil
}

// Update refines the fitted embeddings on newly observed cascades
// without a full refit — the online regime for tracking breaking news.
// Predictors trained before an Update keep their old embeddings' view;
// retrain them to pick up the refinement.
func (s *System) Update(newCascades []*cascade.Cascade) error {
	if len(newCascades) == 0 {
		return fmt.Errorf("core: no cascades to update with")
	}
	_, err := infer.Refine(s.Embeddings, newCascades, infer.Config{
		K: s.cfg.Topics, MaxIter: s.cfg.MaxIter, Seed: s.cfg.Seed,
	})
	return err
}

// SaveEmbeddings writes the fitted model in the library's versioned
// format: a magic + checksum envelope around the CSV body, so loaders
// can tell a genuine embeddings file from a foreign or truncated one.
func (s *System) SaveEmbeddings(w io.Writer) error {
	return s.Embeddings.WriteSigned(w)
}

// LoadSystem rebuilds a System from saved embeddings, verifying the
// envelope checksum when present (files from before the envelope existed
// — bare CSV starting with "node,kind" — still load). The community
// partition is not persisted (it is a training-time artifact); the
// loaded system supports every inference-time operation — influencers,
// features, predictors, updates.
func LoadSystem(r io.Reader, cfg TrainConfig) (*System, error) {
	cfg = cfg.withDefaults()
	m, err := embed.ReadSigned(r)
	if err != nil {
		return nil, err
	}
	if cfg.Topics != m.K() {
		cfg.Topics = m.K()
	}
	return &System{N: m.N(), Embeddings: m, cfg: cfg}, nil
}

// NewSystem wraps an already-decoded embedding model as a servable
// System — the entry point for callers that obtain a model from a
// source other than SaveEmbeddings, such as a training checkpoint.
func NewSystem(m *embed.Model, cfg TrainConfig) *System {
	cfg = cfg.withDefaults()
	cfg.Topics = m.K()
	return &System{N: m.N(), Embeddings: m, cfg: cfg}
}

// Fork deep-copies the system's mutable state (the embeddings), so the
// copy can be refined with Update while the original keeps serving reads
// concurrently — the swap-under-load pattern a serving daemon needs.
// The training-time artifacts (partition, trace) are shared read-only.
func (s *System) Fork() *System {
	return &System{
		N:          s.N,
		Embeddings: s.Embeddings.Clone(),
		Partition:  s.Partition,
		Trace:      s.Trace,
		cfg:        s.cfg,
	}
}

// Influence returns node u's influence vector (a copy).
func (s *System) Influence(u int) []float64 {
	return append([]float64(nil), s.Embeddings.A.Row(u)...)
}

// Selectivity returns node u's selectivity vector (a copy).
func (s *System) Selectivity(u int) []float64 {
	return append([]float64(nil), s.Embeddings.B.Row(u)...)
}

// Rate returns the inferred hazard rate of u infecting v.
func (s *System) Rate(u, v int) float64 { return s.Embeddings.Rate(u, v) }

// Influencer is one node ranked by total influence mass.
type Influencer struct {
	Node      int
	Score     float64 // sum of the influence vector
	TopTopic  int     // topic with the largest influence component
	TopWeight float64 // that component's value
}

// TopInfluencers ranks nodes by total inferred influence — the paper's
// "identification of the significant influencers" application.
func (s *System) TopInfluencers(k int) []Influencer {
	out, _ := s.TopInfluencersCtx(context.Background(), k)
	return out
}

// influencerCheckStride is how many node rows the influencer scan
// processes between cancellation checks.
const influencerCheckStride = 1024

// TopInfluencersCtx is TopInfluencers with cancellation, for serving
// paths that must honor a request deadline: the O(n·K) scan checks ctx
// periodically and abandons the ranking with ctx.Err() once canceled.
func (s *System) TopInfluencersCtx(ctx context.Context, k int) ([]Influencer, error) {
	out := make([]Influencer, 0, s.N)
	for u := 0; u < s.N; u++ {
		if u%influencerCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := s.Embeddings.A.Row(u)
		var sum, best float64
		bestK := 0
		for ki, v := range row {
			sum += v
			if v > best {
				best, bestK = v, ki
			}
		}
		out = append(out, Influencer{Node: u, Score: sum, TopTopic: bestK, TopWeight: best})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// Seed describes one node chosen by SelectSeeds with its marginal and
// cumulative expected coverage.
type Seed = inflmax.Result

// SelectSeeds chooses up to k nodes that maximize the expected number of
// nodes reached within the horizon under the fitted embeddings (lazy
// greedy with the (1-1/e) guarantee) — the influence-maximization
// application of Kempe et al., run on inferred rather than known
// parameters.
func (s *System) SelectSeeds(k int, horizon float64) ([]Seed, error) {
	return inflmax.Greedy(s.Embeddings, horizon, k, nil)
}

// SelectSeedsCtx is SelectSeeds with cancellation threaded into the
// greedy loop, so a serving request deadline (or a disconnected client)
// stops the O(n²·K) selection instead of burning CPU to completion.
func (s *System) SelectSeedsCtx(ctx context.Context, k int, horizon float64) ([]Seed, error) {
	return inflmax.GreedyCtx(ctx, s.Embeddings, horizon, k, nil)
}

// ExpectedCoverage evaluates the same objective for an explicit seed set.
func (s *System) ExpectedCoverage(seeds []int, horizon float64) (float64, error) {
	return inflmax.Coverage(s.Embeddings, horizon, seeds)
}

// Features extracts the early-adopter features of a (possibly partial)
// cascade under the fitted embeddings.
func (s *System) Features(early *cascade.Cascade) (features.Set, error) {
	return features.Extract(s.Embeddings, early)
}

// Predictor is a trained virality classifier on top of a fitted System.
type Predictor struct {
	system    *System
	std       *svm.Standardizer
	model     *svm.Model
	threshold int
	early     float64
	names     []string
}

// TrainPredictor fits the paper's linear-SVM virality classifier:
// cascades whose final size reaches sizeThreshold are the positive
// class; earlyCutoff bounds the visible early-adopter prefix.
func (s *System) TrainPredictor(cs []*cascade.Cascade, earlyCutoff float64, sizeThreshold int) (*Predictor, error) {
	if earlyCutoff <= 0 {
		return nil, fmt.Errorf("core: earlyCutoff must be positive, got %v", earlyCutoff)
	}
	sets, sizes, err := features.ExtractAll(s.Embeddings, cs, earlyCutoff)
	if err != nil {
		return nil, err
	}
	if len(sets) < 10 {
		return nil, fmt.Errorf("core: only %d usable cascades for predictor training", len(sets))
	}
	names := []string{"diverA", "normA", "maxA"}
	x := make([][]float64, len(sets))
	for i, fs := range sets {
		row, err := fs.Select(names)
		if err != nil {
			return nil, err
		}
		x[i] = row
	}
	y := eval.LabelsBySizeThreshold(sizes, sizeThreshold)
	pos := 0
	for _, l := range y {
		if l == 1 {
			pos++
		}
	}
	if pos == 0 || pos == len(y) {
		return nil, fmt.Errorf("core: threshold %d yields a single-class training set", sizeThreshold)
	}
	std, err := svm.FitStandardizer(x)
	if err != nil {
		return nil, err
	}
	model, err := svm.TrainBestF1(std.Apply(x), y, svm.Options{
		Seed: s.cfg.Seed + 1, Epochs: 60,
	}, nil, xrand.New(s.cfg.Seed+2))
	if err != nil {
		return nil, err
	}
	return &Predictor{
		system: s, std: std, model: model,
		threshold: sizeThreshold, early: earlyCutoff, names: names,
	}, nil
}

// Threshold returns the size threshold the predictor was trained for.
func (p *Predictor) Threshold() int { return p.threshold }

// EarlyCutoff returns the early-adopter time cutoff the predictor reads
// cascades up to.
func (p *Predictor) EarlyCutoff() float64 { return p.early }

// PredictViral reports whether the cascade's early prefix (everything up
// to the predictor's early cutoff) signals a final size at or above the
// training threshold, along with the classifier margin.
func (p *Predictor) PredictViral(c *cascade.Cascade) (bool, float64, error) {
	early := c.Prefix(p.early)
	if early.Size() == 0 {
		return false, 0, fmt.Errorf("core: cascade %d has no infections before the early cutoff %v", c.ID, p.early)
	}
	fs, err := p.system.Features(early)
	if err != nil {
		return false, 0, err
	}
	row, err := fs.Select(p.names)
	if err != nil {
		return false, 0, err
	}
	margin := p.model.Decision(p.std.Apply([][]float64{row})[0])
	return margin >= 0, margin, nil
}

// Evaluate scores the predictor on labeled cascades and returns the
// confusion matrix.
func (p *Predictor) Evaluate(cs []*cascade.Cascade) (eval.Confusion, error) {
	var truth, pred []int
	for _, c := range cs {
		viral, _, err := p.PredictViral(c)
		if err != nil {
			continue // cascades starting after the cutoff are unusable
		}
		if c.Size() >= p.threshold {
			truth = append(truth, 1)
		} else {
			truth = append(truth, -1)
		}
		if viral {
			pred = append(pred, 1)
		} else {
			pred = append(pred, -1)
		}
	}
	if len(truth) == 0 {
		return eval.Confusion{}, fmt.Errorf("core: no evaluable cascades")
	}
	return eval.Confuse(truth, pred)
}
