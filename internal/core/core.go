// Package core ties the paper's pieces into one end-to-end system: fit
// topic-specific influence/selectivity embeddings from observed cascades
// with the community-parallel hierarchical algorithm, then predict the
// virality of new cascades from their early adopters. The root-level
// viralcast package re-exports this API for library consumers; the
// pieces (simulator, inference, clustering, metrics) remain individually
// usable through their own packages.
package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"viralcast/internal/cascade"
	"viralcast/internal/checkpoint"
	"viralcast/internal/embed"
	"viralcast/internal/eval"
	"viralcast/internal/features"
	"viralcast/internal/infer"
	"viralcast/internal/inflmax"
	"viralcast/internal/pool"
	"viralcast/internal/slpa"
	"viralcast/internal/svm"
	"viralcast/internal/xrand"
)

// TrainConfig bundles every knob of the end-to-end training pipeline.
// The zero value is completed by sensible defaults.
type TrainConfig struct {
	// Topics is the latent dimension K of the embeddings.
	Topics int
	// MaxIter bounds gradient-ascent epochs per hierarchy level.
	MaxIter int
	// Workers bounds how many communities are optimized concurrently.
	Workers int
	// Q stops the community hierarchy when at most Q communities remain;
	// Q <= 1 ends with a full sequential polish.
	Q int
	// Seed makes the whole pipeline deterministic.
	Seed uint64
	// CheckpointPath, when set, persists training snapshots to this file
	// (atomically: write-temp-then-rename) so an interrupted run can be
	// continued with Resume. A final checkpoint is also written when the
	// training context is canceled mid-fit.
	CheckpointPath string
	// CheckpointEvery is the snapshot cadence in hierarchy levels
	// (sequential polish stages count epochs); values < 1 mean every
	// boundary.
	CheckpointEvery int
	// Resume warm-starts training from the snapshot at CheckpointPath if
	// the file exists; a missing file starts from scratch. The cascades,
	// configuration, and seed must match the interrupted run.
	Resume bool
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Topics <= 0 {
		c.Topics = 4
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 30
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Q < 1 {
		c.Q = 1
	}
	return c
}

// System is a fitted instance of the paper's framework.
type System struct {
	N          int
	Embeddings *embed.Model
	Partition  *slpa.Partition
	Trace      *infer.Trace
	cfg        TrainConfig

	// agg caches per-generation aggregates derived from the embeddings
	// (row influence sums, per-node top topic, selectivity masses).
	// It is built lazily on first use, shared by every compute path of
	// this generation, and dropped whenever the embeddings mutate
	// (Update); Fork starts the copy with an empty cache. Reads and the
	// idempotent rebuild are lock-free.
	agg atomic.Pointer[systemAgg]
}

// systemAgg is one generation's precomputed view of the embeddings: the
// per-node quantities every influencer ranking re-derived O(n·K)-style
// on each request before this cache existed. Influencer rankings read
// it directly; seed selection and coverage evaluation reuse the same
// arrays as inflmax dead-row shortcuts.
type systemAgg struct {
	rowSum    []float64 // per-node total influence mass (sum of A's row)
	topTopic  []int     // per-node argmax topic of the A row
	topWeight []float64 // the argmax component's value
	selSum    []float64 // per-node total selectivity mass (sum of B's row)
	pre       *inflmax.Precomp
}

// aggChunk is how many node rows one aggregate-builder task owns; small
// enough to spread across cores, large enough to amortize scheduling.
const aggChunk = 8192

// aggregates returns the generation's precomputed view, building it on
// first use. Concurrent first callers may build duplicates; the build is
// deterministic and idempotent, so whichever Store lands last is
// indistinguishable from the rest.
func (s *System) aggregates() *systemAgg {
	if a := s.agg.Load(); a != nil {
		return a
	}
	a := buildAggregates(s.Embeddings)
	s.agg.Store(a)
	return a
}

// invalidateAggregates drops the cached view; the next compute path
// rebuilds against the mutated embeddings.
func (s *System) invalidateAggregates() { s.agg.Store(nil) }

// buildAggregates scans the embeddings once, sharded across cores. Each
// task owns a contiguous node range, so every output cell has exactly
// one writer and the result is identical for any worker count.
func buildAggregates(m *embed.Model) *systemAgg {
	n := m.N()
	a := &systemAgg{
		rowSum:    make([]float64, n),
		topTopic:  make([]int, n),
		topWeight: make([]float64, n),
		selSum:    make([]float64, n),
	}
	nonneg := make([]bool, (n+aggChunk-1)/aggChunk)
	tasks := len(nonneg)
	workers := runtime.GOMAXPROCS(0)
	pool.Run(workers, tasks, func(t int) error { //nolint:errcheck // tasks cannot fail
		lo, hi := t*aggChunk, (t+1)*aggChunk
		if hi > n {
			hi = n
		}
		ok := true
		for u := lo; u < hi; u++ {
			var sum, best float64
			bestK := 0
			for ki, v := range m.A.Row(u) {
				sum += v
				if v > best {
					best, bestK = v, ki
				}
				if v < 0 {
					ok = false
				}
			}
			a.rowSum[u], a.topTopic[u], a.topWeight[u] = sum, bestK, best
			var bs float64
			for _, v := range m.B.Row(u) {
				bs += v
				if v < 0 {
					ok = false
				}
			}
			a.selSum[u] = bs
		}
		nonneg[t] = ok
		return nil
	})
	// The inflmax dead-row shortcut (zero mass ⇒ zero rates) is only
	// sound for non-negative embeddings — the model invariant, but a
	// hand-built model can violate it, so the shortcut is gated.
	allOK := true
	for _, ok := range nonneg {
		allOK = allOK && ok
	}
	if allOK {
		a.pre = &inflmax.Precomp{ASum: a.rowSum, BSum: a.selSum}
	}
	return a
}

// Train fits the system on observed cascades over n nodes.
func Train(cs []*cascade.Cascade, n int, cfg TrainConfig) (*System, error) {
	return TrainCtx(context.Background(), cs, n, cfg)
}

// TrainCtx is Train with cancellation and fault tolerance. Canceling ctx
// stops the fit at the next consistency boundary and — if
// cfg.CheckpointPath is set — leaves a durable snapshot behind before
// returning the context's error, so a SIGINT-style shutdown loses no
// more than the level in flight. Rerunning with cfg.Resume continues
// from that snapshot.
func TrainCtx(ctx context.Context, cs []*cascade.Cascade, n int, cfg TrainConfig) (*System, error) {
	cfg = cfg.withDefaults()
	if n <= 0 {
		return nil, fmt.Errorf("core: n must be positive, got %d", n)
	}
	if len(cs) == 0 {
		return nil, fmt.Errorf("core: no training cascades")
	}
	res, err := cfg.resilience()
	if err != nil {
		return nil, err
	}
	inferCfg := infer.Config{K: cfg.Topics, MaxIter: cfg.MaxIter, Seed: cfg.Seed}
	m, part, tr, err := infer.PipelineCtx(ctx, cs, n, inferCfg, infer.PipelineOptions{
		Parallel:   infer.ParallelOptions{Workers: cfg.Workers, Q: cfg.Q},
		Resilience: res,
	})
	if err != nil {
		return nil, err
	}
	return &System{N: n, Embeddings: m, Partition: part, Trace: tr, cfg: cfg}, nil
}

// resilience translates the checkpoint knobs into the inference layer's
// Resilience hooks, loading the resume snapshot if requested.
func (c TrainConfig) resilience() (infer.Resilience, error) {
	res := infer.Resilience{CheckpointEvery: c.CheckpointEvery}
	if c.CheckpointPath == "" {
		if c.Resume {
			return res, fmt.Errorf("core: Resume requires CheckpointPath")
		}
		return res, nil
	}
	path := c.CheckpointPath
	res.Checkpoint = func(st infer.FitState) error {
		return checkpoint.Save(path, &checkpoint.State{
			Model: st.Model, Level: st.Level, Epoch: st.Epoch,
			Step: st.Step, Seed: st.Seed, LogLik: st.LogLik,
		})
	}
	if c.Resume {
		st, err := checkpoint.Resume(path)
		if err != nil {
			return res, err
		}
		if st != nil {
			res.Resume = &infer.FitState{
				Model: st.Model, Level: st.Level, Epoch: st.Epoch,
				Step: st.Step, Seed: st.Seed, LogLik: st.LogLik,
			}
		}
	}
	return res, nil
}

// Update refines the fitted embeddings on newly observed cascades
// without a full refit — the online regime for tracking breaking news.
// Predictors trained before an Update keep their old embeddings' view;
// retrain them to pick up the refinement.
func (s *System) Update(newCascades []*cascade.Cascade) error {
	if len(newCascades) == 0 {
		return fmt.Errorf("core: no cascades to update with")
	}
	// The refinement mutates the embeddings in place, so the cached
	// aggregates are stale either way once it has started.
	defer s.invalidateAggregates()
	_, err := infer.Refine(s.Embeddings, newCascades, infer.Config{
		K: s.cfg.Topics, MaxIter: s.cfg.MaxIter, Seed: s.cfg.Seed,
	})
	return err
}

// SaveEmbeddings writes the fitted model in the library's versioned
// format: a magic + checksum envelope around the CSV body, so loaders
// can tell a genuine embeddings file from a foreign or truncated one.
func (s *System) SaveEmbeddings(w io.Writer) error {
	return s.Embeddings.WriteSigned(w)
}

// LoadSystem rebuilds a System from saved embeddings, verifying the
// envelope checksum when present (files from before the envelope existed
// — bare CSV starting with "node,kind" — still load). The community
// partition is not persisted (it is a training-time artifact); the
// loaded system supports every inference-time operation — influencers,
// features, predictors, updates.
func LoadSystem(r io.Reader, cfg TrainConfig) (*System, error) {
	cfg = cfg.withDefaults()
	m, err := embed.ReadSigned(r)
	if err != nil {
		return nil, err
	}
	if cfg.Topics != m.K() {
		cfg.Topics = m.K()
	}
	return &System{N: m.N(), Embeddings: m, cfg: cfg}, nil
}

// NewSystem wraps an already-decoded embedding model as a servable
// System — the entry point for callers that obtain a model from a
// source other than SaveEmbeddings, such as a training checkpoint.
func NewSystem(m *embed.Model, cfg TrainConfig) *System {
	cfg = cfg.withDefaults()
	cfg.Topics = m.K()
	return &System{N: m.N(), Embeddings: m, cfg: cfg}
}

// Fork deep-copies the system's mutable state (the embeddings), so the
// copy can be refined with Update while the original keeps serving reads
// concurrently — the swap-under-load pattern a serving daemon needs.
// The training-time artifacts (partition, trace) are shared read-only.
func (s *System) Fork() *System {
	return &System{
		N:          s.N,
		Embeddings: s.Embeddings.Clone(),
		Partition:  s.Partition,
		Trace:      s.Trace,
		cfg:        s.cfg,
	}
}

// Influence returns node u's influence vector (a copy).
func (s *System) Influence(u int) []float64 {
	return append([]float64(nil), s.Embeddings.A.Row(u)...)
}

// Selectivity returns node u's selectivity vector (a copy).
func (s *System) Selectivity(u int) []float64 {
	return append([]float64(nil), s.Embeddings.B.Row(u)...)
}

// Rate returns the inferred hazard rate of u infecting v.
func (s *System) Rate(u, v int) float64 { return s.Embeddings.Rate(u, v) }

// Influencer is one node ranked by total influence mass.
type Influencer struct {
	Node      int
	Score     float64 // sum of the influence vector
	TopTopic  int     // topic with the largest influence component
	TopWeight float64 // that component's value
}

// TopInfluencers ranks nodes by total inferred influence — the paper's
// "identification of the significant influencers" application.
func (s *System) TopInfluencers(k int) []Influencer {
	out, _ := s.TopInfluencersCtx(context.Background(), k)
	return out
}

// influencerCheckStride is how many node rows the influencer scan
// processes between cancellation checks.
const influencerCheckStride = 1024

// TopInfluencersCtx is TopInfluencers with cancellation, for serving
// paths that must honor a request deadline. The ranking reads the
// generation's precomputed per-node aggregates (no O(n·K) row scan on
// the request path), keeps a bounded k-element min-heap per worker
// instead of materializing and fully sorting all n entries, and shards
// the node range across GOMAXPROCS workers; each worker checks ctx per
// stride and abandons the ranking with ctx.Err() once canceled.
func (s *System) TopInfluencersCtx(ctx context.Context, k int) ([]Influencer, error) {
	return s.topInfluencersRange(ctx, k, 0, 0, s.N)
}

// TopInfluencersRangeCtx ranks only the nodes in [lo, hi) — the stripe
// a sharded daemon owns when a routing front-end partitions the node
// universe across processes. The stripe-local top-k is exact, so
// merging every shard's stripe ranking with MergeTopInfluencers
// recovers the single-node global ranking byte for byte (the same
// lemma the per-worker heaps inside one process rely on, lifted to
// processes). Bounds are clamped to [0, N); an empty range ranks
// nothing.
func (s *System) TopInfluencersRangeCtx(ctx context.Context, k, lo, hi int) ([]Influencer, error) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.N {
		hi = s.N
	}
	if hi < lo {
		hi = lo
	}
	return s.topInfluencersRange(ctx, k, 0, lo, hi)
}

// MergeTopInfluencers merges per-partition candidate rankings into the
// global top-k under the published order (score descending, node id
// ascending on ties). Provided each input list is the exact top-k of a
// partition of the node universe and the partitions are disjoint, the
// result is identical to ranking the union directly: any node in the
// global top-k is, a fortiori, in the top-k of its own partition, so
// the union of partition winners contains every global winner. This is
// the PR 5 per-worker heap merge exported as a standalone primitive so
// a scatter-gathering router can merge per-shard heaps the same way one
// process merges per-worker heaps. k < 0 keeps every candidate.
func MergeTopInfluencers(k int, lists ...[]Influencer) []Influencer {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	merged := make([]Influencer, 0, total)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool { return rankBelow(merged[j], merged[i]) })
	if k >= 0 && k < len(merged) {
		merged = merged[:k]
	}
	return merged
}

// rankBelow is the inverse of the published influencer order: a ranks
// strictly below b when its score is lower, ties broken toward the
// larger node id. It is the heap order (weakest kept candidate at the
// root) and the complement of the final sort.
func rankBelow(a, b Influencer) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Node > b.Node
}

// topInfluencersRange is the parallel heap-based selection over the
// node range [rlo, rhi); workers <= 0 uses GOMAXPROCS. Every worker
// owns a contiguous node stripe of the range and its stripe-local
// top-k is exact, so the merged result is identical for any worker
// count.
func (s *System) topInfluencersRange(ctx context.Context, k, workers, rlo, rhi int) ([]Influencer, error) {
	span := rhi - rlo
	if k > span {
		k = span
	}
	if k <= 0 {
		return []Influencer{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Below this many rows per worker the stripe bookkeeping costs more
	// than it parallelizes away.
	const minStripe = 4096
	if max := (span + minStripe - 1) / minStripe; workers > max {
		workers = max
	}
	agg := s.aggregates()
	heaps := make([][]Influencer, workers)
	err := pool.RunCtx(ctx, workers, workers, func(w int) error {
		lo := rlo + w*span/workers
		hi := rlo + (w+1)*span/workers
		h := make([]Influencer, 0, k)
		for u := lo; u < hi; u++ {
			if (u-lo)%influencerCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			cand := Influencer{
				Node: u, Score: agg.rowSum[u],
				TopTopic: agg.topTopic[u], TopWeight: agg.topWeight[u],
			}
			if len(h) < k {
				h = append(h, cand)
				siftUpInfluencer(h, len(h)-1)
			} else if rankBelow(h[0], cand) {
				h[0] = cand
				siftDownInfluencer(h, 0)
			}
		}
		heaps[w] = h
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Merge: at most workers*k exact stripe winners; a full sort of this
	// small set recovers the range's global order.
	return MergeTopInfluencers(k, heaps...), nil
}

// siftUpInfluencer and siftDownInfluencer maintain a slice min-heap
// under rankBelow (root = weakest kept candidate) without the
// interface boxing of container/heap — this is the per-row hot path.
func siftUpInfluencer(h []Influencer, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !rankBelow(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDownInfluencer(h []Influencer, i int) {
	n := len(h)
	for {
		least := i
		if l := 2*i + 1; l < n && rankBelow(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && rankBelow(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// topInfluencersFullSort is the pre-optimization reference: a full
// O(n·K) row scan materializing all n entries plus a complete sort. It
// stays as the correctness oracle and benchmark baseline for the
// parallel heap-based path.
func (s *System) topInfluencersFullSort(ctx context.Context, k int) ([]Influencer, error) {
	out := make([]Influencer, 0, s.N)
	for u := 0; u < s.N; u++ {
		if u%influencerCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := s.Embeddings.A.Row(u)
		var sum, best float64
		bestK := 0
		for ki, v := range row {
			sum += v
			if v > best {
				best, bestK = v, ki
			}
		}
		out = append(out, Influencer{Node: u, Score: sum, TopTopic: bestK, TopWeight: best})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if k < 0 {
		k = 0
	}
	if k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// Seed describes one node chosen by SelectSeeds with its marginal and
// cumulative expected coverage.
type Seed = inflmax.Result

// SelectSeeds chooses up to k nodes that maximize the expected number of
// nodes reached within the horizon under the fitted embeddings (lazy
// greedy with the (1-1/e) guarantee) — the influence-maximization
// application of Kempe et al., run on inferred rather than known
// parameters.
func (s *System) SelectSeeds(k int, horizon float64) ([]Seed, error) {
	return s.SelectSeedsCtx(context.Background(), k, horizon)
}

// SelectSeedsCtx is SelectSeeds with cancellation threaded into the
// greedy loop, so a serving request deadline (or a disconnected client)
// stops the O(n²·K) selection instead of burning CPU to completion. The
// gain evaluations run in parallel (sharded initial pass, batched lazy
// re-evaluations) against the generation's precomputed aggregates; the
// selected set is identical for any worker count.
func (s *System) SelectSeedsCtx(ctx context.Context, k int, horizon float64) ([]Seed, error) {
	return inflmax.GreedyOpt(ctx, s.Embeddings, horizon, k, nil,
		inflmax.Options{Pre: s.aggregates().pre})
}

// ExpectedCoverage evaluates the same objective for an explicit seed set.
func (s *System) ExpectedCoverage(seeds []int, horizon float64) (float64, error) {
	return inflmax.CoverageOpt(s.Embeddings, horizon, seeds,
		inflmax.Options{Pre: s.aggregates().pre})
}

// Features extracts the early-adopter features of a (possibly partial)
// cascade under the fitted embeddings.
func (s *System) Features(early *cascade.Cascade) (features.Set, error) {
	return features.Extract(s.Embeddings, early)
}

// Predictor is a trained virality classifier on top of a fitted System.
type Predictor struct {
	system    *System
	std       *svm.Standardizer
	model     *svm.Model
	threshold int
	early     float64
	names     []string

	// scratch recycles per-prediction buffers (selected feature row and
	// its standardized form) so the serving predict path allocates only
	// what must outlive the request.
	scratch sync.Pool
}

// predictScratch is one prediction's reusable workspace.
type predictScratch struct {
	row []float64
	std []float64
}

// TrainPredictor fits the paper's linear-SVM virality classifier:
// cascades whose final size reaches sizeThreshold are the positive
// class; earlyCutoff bounds the visible early-adopter prefix.
func (s *System) TrainPredictor(cs []*cascade.Cascade, earlyCutoff float64, sizeThreshold int) (*Predictor, error) {
	if earlyCutoff <= 0 {
		return nil, fmt.Errorf("core: earlyCutoff must be positive, got %v", earlyCutoff)
	}
	sets, sizes, err := features.ExtractAll(s.Embeddings, cs, earlyCutoff)
	if err != nil {
		return nil, err
	}
	if len(sets) < 10 {
		return nil, fmt.Errorf("core: only %d usable cascades for predictor training", len(sets))
	}
	names := []string{"diverA", "normA", "maxA"}
	x := make([][]float64, len(sets))
	for i, fs := range sets {
		row, err := fs.Select(names)
		if err != nil {
			return nil, err
		}
		x[i] = row
	}
	y := eval.LabelsBySizeThreshold(sizes, sizeThreshold)
	pos := 0
	for _, l := range y {
		if l == 1 {
			pos++
		}
	}
	if pos == 0 || pos == len(y) {
		return nil, fmt.Errorf("core: threshold %d yields a single-class training set", sizeThreshold)
	}
	std, err := svm.FitStandardizer(x)
	if err != nil {
		return nil, err
	}
	model, err := svm.TrainBestF1(std.Apply(x), y, svm.Options{
		Seed: s.cfg.Seed + 1, Epochs: 60,
	}, nil, xrand.New(s.cfg.Seed+2))
	if err != nil {
		return nil, err
	}
	return &Predictor{
		system: s, std: std, model: model,
		threshold: sizeThreshold, early: earlyCutoff, names: names,
	}, nil
}

// Threshold returns the size threshold the predictor was trained for.
func (p *Predictor) Threshold() int { return p.threshold }

// EarlyCutoff returns the early-adopter time cutoff the predictor reads
// cascades up to.
func (p *Predictor) EarlyCutoff() float64 { return p.early }

// PredictViral reports whether the cascade's early prefix (everything up
// to the predictor's early cutoff) signals a final size at or above the
// training threshold, along with the classifier margin.
func (p *Predictor) PredictViral(c *cascade.Cascade) (bool, float64, error) {
	early := c.Prefix(p.early)
	if early.Size() == 0 {
		return false, 0, fmt.Errorf("core: cascade %d has no infections before the early cutoff %v", c.ID, p.early)
	}
	fs, err := p.system.Features(early)
	if err != nil {
		return false, 0, err
	}
	ws, _ := p.scratch.Get().(*predictScratch)
	if ws == nil {
		ws = &predictScratch{}
	}
	row, err := fs.SelectAppend(ws.row[:0], p.names)
	if err != nil {
		return false, 0, err
	}
	ws.row = row
	ws.std = p.std.ApplyRow(ws.std[:0], row)
	margin := p.model.Decision(ws.std)
	p.scratch.Put(ws)
	return margin >= 0, margin, nil
}

// Evaluate scores the predictor on labeled cascades and returns the
// confusion matrix.
func (p *Predictor) Evaluate(cs []*cascade.Cascade) (eval.Confusion, error) {
	var truth, pred []int
	for _, c := range cs {
		viral, _, err := p.PredictViral(c)
		if err != nil {
			continue // cascades starting after the cutoff are unusable
		}
		if c.Size() >= p.threshold {
			truth = append(truth, 1)
		} else {
			truth = append(truth, -1)
		}
		if viral {
			pred = append(pred, 1)
		} else {
			pred = append(pred, -1)
		}
	}
	if len(truth) == 0 {
		return eval.Confusion{}, fmt.Errorf("core: no evaluable cascades")
	}
	return eval.Confuse(truth, pred)
}
