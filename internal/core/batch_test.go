package core

import (
	"math"
	"testing"

	"viralcast/internal/cascade"
	"viralcast/internal/features"
)

// TestPredictViralBatchBitIdentical is the batch plane's foundational
// contract: every slot of a batched prediction must equal the
// single-call answer for that cascade exactly — same verdict, same
// margin down to the float bits, same error message — across batch
// sizes that exercise the blocked kernel's 4-row main loop and its
// remainder tail, with healthy and broken cascades interleaved.
func TestPredictViralBatchBitIdentical(t *testing.T) {
	cs := workload(t, 80, 300, 8)
	sys, err := Train(cs[:200], 80, TrainConfig{Topics: 2, MaxIter: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := sys.TrainPredictor(cs[:200], 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Mix in cascades that fail per item: one starting after the early
	// cutoff, one with an out-of-universe node.
	late := &cascade.Cascade{ID: 9001, Infections: []cascade.Infection{{Node: 1, Time: 99}}}
	alien := &cascade.Cascade{ID: 9002, Infections: []cascade.Infection{{Node: 80, Time: 0.1}}}
	mixed := append([]*cascade.Cascade{late, alien}, cs[200:]...)

	for _, size := range []int{1, 2, 3, 4, 5, 16, len(mixed)} {
		batch := mixed[:size]
		out := make([]BatchResult, size)
		pred.PredictViralBatch(batch, out)
		for i, c := range batch {
			viral, margin, err := pred.PredictViral(c)
			if (err == nil) != (out[i].Err == nil) {
				t.Fatalf("size %d item %d: batch err %v, single err %v", size, i, out[i].Err, err)
			}
			if err != nil {
				if out[i].Err.Error() != err.Error() {
					t.Fatalf("size %d item %d: batch error %q != single error %q", size, i, out[i].Err, err)
				}
				continue
			}
			if out[i].Viral != viral ||
				math.Float64bits(out[i].Margin) != math.Float64bits(margin) {
				t.Fatalf("size %d item %d: batch (%v, %x) != single (%v, %x)",
					size, i, out[i].Viral, out[i].Margin, viral, margin)
			}
		}
	}
}

// TestFeaturesBatchBitIdentical checks the batched extraction path
// against per-cascade Extract through System.Features.
func TestFeaturesBatchBitIdentical(t *testing.T) {
	cs := workload(t, 60, 120, 14)
	sys, err := Train(cs, 60, TrainConfig{Topics: 2, MaxIter: 6, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := sys.TrainPredictor(cs, 0.5, 3)
	if err != nil {
		t.Skip("workload degenerate for this seed")
	}
	late := &cascade.Cascade{ID: 9001, Infections: []cascade.Infection{{Node: 1, Time: 99}}}
	batch := append([]*cascade.Cascade{late}, cs[:50]...)
	out := make([]FeatureResult, len(batch))
	pred.FeaturesBatch(batch, out)
	for i, c := range batch {
		early := c.Prefix(pred.EarlyCutoff())
		if early.Size() == 0 {
			if out[i].Err == nil {
				t.Fatalf("item %d: empty prefix not rejected", i)
			}
			continue
		}
		want, err := sys.Features(early)
		if err != nil {
			t.Fatal(err)
		}
		if out[i].Err != nil {
			t.Fatalf("item %d: unexpected error %v", i, out[i].Err)
		}
		if out[i].Set != want {
			t.Fatalf("item %d: batch set %+v != single set %+v", i, out[i].Set, want)
		}
	}
	// The block must select in features.Names order for the Set rebuild
	// above to be sound; guard the assumption against reordering.
	if features.Names[0] != "diverA" || features.Names[4] != "earlyRate" {
		t.Fatal("features.Names order changed; FeaturesBatch row mapping is stale")
	}
}
