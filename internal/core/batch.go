package core

import (
	"fmt"
	"sync"

	"viralcast/internal/cascade"
	"viralcast/internal/features"
)

// BatchResult is one cascade's slot in a batched prediction: a
// classifier verdict, or the per-item error that excluded it. Errors
// carry exactly the message the single-request PredictViral path
// produces for the same cascade, so a batched caller sees the same
// contract item by item.
type BatchResult struct {
	Viral  bool
	Margin float64
	Err    error
}

// FeatureResult is one cascade's slot in a batched feature extraction.
type FeatureResult struct {
	Set features.Set
	Err error
}

// batchScratch is one batched call's reusable workspace: the early
// prefixes, the per-item extraction errors, and the margin vector the
// blocked kernel writes. Nothing in it escapes the call.
type batchScratch struct {
	earlies []*cascade.Cascade
	views   []cascade.Cascade
	errs    []error
	margins []float64
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// cutEarlies fills the early-prefix slot of every cascade, preferring
// the aliasing PrefixView (live-store snapshots are time-sorted, so the
// view almost always applies) over a copying Prefix, and recording the
// single-path error for cascades with no early adopters.
func (ws *batchScratch) cutEarlies(cs []*cascade.Cascade, cutoff float64) {
	for i, c := range cs {
		var early *cascade.Cascade
		if v, ok := c.PrefixView(cutoff); ok {
			ws.views[i] = v
			early = &ws.views[i]
		} else {
			early = c.Prefix(cutoff)
		}
		if early.Size() == 0 {
			ws.errs[i] = fmt.Errorf("core: cascade %d has no infections before the early cutoff %v", c.ID, cutoff)
			continue
		}
		ws.earlies[i] = early
	}
}

// grow readies the scratch for n items, reusing prior capacity.
func (ws *batchScratch) grow(n int) {
	if cap(ws.earlies) < n {
		ws.earlies = make([]*cascade.Cascade, n)
		ws.views = make([]cascade.Cascade, n)
		ws.errs = make([]error, n)
		ws.margins = make([]float64, n)
	}
	ws.earlies = ws.earlies[:n]
	ws.views = ws.views[:n]
	ws.errs = ws.errs[:n]
	ws.margins = ws.margins[:n]
	for i := range ws.earlies {
		ws.earlies[i] = nil
		ws.errs[i] = nil
	}
}

// PredictViralBatch classifies a whole batch of cascades in one pass:
// every early prefix's features land in one contiguous pooled block
// (features.ExtractBatch), standardization runs over the block in place
// (svm.Standardizer.ApplyBlock), and all margins come out of one
// blocked matrix–vector kernel (svm.Model.DecisionBlock). Each step
// performs, per item, the identical float operations in the identical
// order as PredictViral, so out[i] is bit-identical to a single call on
// cs[i] — the batch form amortizes workspace churn and call overhead,
// it does not approximate. A bad cascade fails only its own slot.
//
// out must have at least len(cs) slots.
func (p *Predictor) PredictViralBatch(cs []*cascade.Cascade, out []BatchResult) {
	if len(out) < len(cs) {
		panic(fmt.Sprintf("core: PredictViralBatch %d cascades into %d result slots", len(cs), len(out)))
	}
	ws, _ := batchScratchPool.Get().(*batchScratch)
	ws.grow(len(cs))
	ws.cutEarlies(cs, p.early)
	dim := len(p.names)
	blk := features.GetBlock(len(cs), dim)
	features.ExtractBatch(p.system.Embeddings, ws.earlies, p.names, blk, ws.errs)
	// Error rows stayed zero; standardizing and classifying them is
	// harmless garbage that the error slot masks on the way out, and
	// keeping them in the block keeps the kernels branch-free.
	p.std.ApplyBlock(blk.Data, len(cs), dim)
	p.model.DecisionBlock(ws.margins[:len(cs)], blk.Data, dim)
	for i := range cs {
		if err := ws.errs[i]; err != nil {
			out[i] = BatchResult{Err: err}
			continue
		}
		m := ws.margins[i]
		out[i] = BatchResult{Viral: m >= 0, Margin: m}
	}
	features.PutBlock(blk)
	batchScratchPool.Put(ws)
}

// FeaturesBatch extracts the full feature set of every cascade's early
// prefix (cut at the predictor's cutoff) through the same contiguous
// block path the batched classifier uses. Per-item errors mirror the
// single-request extraction contract.
//
// out must have at least len(cs) slots.
func (p *Predictor) FeaturesBatch(cs []*cascade.Cascade, out []FeatureResult) {
	if len(out) < len(cs) {
		panic(fmt.Sprintf("core: FeaturesBatch %d cascades into %d result slots", len(cs), len(out)))
	}
	ws, _ := batchScratchPool.Get().(*batchScratch)
	ws.grow(len(cs))
	ws.cutEarlies(cs, p.early)
	dim := len(features.Names)
	blk := features.GetBlock(len(cs), dim)
	features.ExtractBatch(p.system.Embeddings, ws.earlies, features.Names, blk, ws.errs)
	for i := range cs {
		if err := ws.errs[i]; err != nil {
			out[i] = FeatureResult{Err: err}
			continue
		}
		row := blk.Row(i)
		out[i] = FeatureResult{Set: features.Set{
			DiverA:     row[0],
			NormA:      row[1],
			MaxA:       row[2],
			EarlyCount: row[3],
			EarlyRate:  row[4],
		}}
	}
	features.PutBlock(blk)
	batchScratchPool.Put(ws)
}
