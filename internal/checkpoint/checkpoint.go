// Package checkpoint persists training state durably so a long
// inference run killed mid-flight — SIGINT, OOM, a pulled plug — resumes
// from its last consistent snapshot instead of restarting from scratch.
//
// A checkpoint file is a small text header followed by the embedding
// model in the embed CSV format:
//
//	viralcast-checkpoint v1
//	level=3 epoch=40 step=0.25 seed=42 loglik=-1234.5
//	payload bytes=182733 crc32=9ab3f00d
//	<model CSV>
//
// The header's byte length and CRC-32 of the payload detect truncation
// and bit rot before a corrupt model ever reaches the optimizer. Save
// writes to a temporary file in the same directory and renames it into
// place, so the checkpoint path always holds either the previous
// complete snapshot or the new one — never a torn write.
package checkpoint

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"viralcast/internal/embed"
	"viralcast/internal/faultinject"
)

const magic = "viralcast-checkpoint v1"

// State is everything a fit loop needs to continue where it stopped.
type State struct {
	// Model is the embedding snapshot at a consistent optimization
	// boundary (end of an accepted epoch or a hierarchy level).
	Model *embed.Model
	// Level counts fully completed hierarchy levels (0 for sequential
	// fits).
	Level int
	// Epoch counts accepted epochs completed within the current stage.
	Epoch int
	// Step is the current base step size — already halved by any
	// divergence backoffs, so a resumed run does not re-diverge.
	Step float64
	// Seed is the run's RNG seed; a resume must be given the same data
	// and configuration for the remaining schedule to line up.
	Seed uint64
	// LogLik is the training log-likelihood at the snapshot.
	LogLik float64
}

// Save atomically writes st to path: the bytes go to a temporary file in
// the same directory (same filesystem, so the final rename is atomic),
// are fsynced, and then renamed over path.
func Save(path string, st *State) error {
	if st == nil || st.Model == nil {
		return fmt.Errorf("checkpoint: nil state")
	}
	var payload bytes.Buffer
	if err := st.Model.Write(&payload); err != nil {
		return fmt.Errorf("checkpoint: encoding model: %w", err)
	}
	var buf bytes.Buffer
	fmt.Fprintln(&buf, magic)
	fmt.Fprintf(&buf, "level=%d epoch=%d step=%s seed=%d loglik=%s\n",
		st.Level, st.Epoch,
		strconv.FormatFloat(st.Step, 'g', -1, 64), st.Seed,
		strconv.FormatFloat(st.LogLik, 'g', -1, 64))
	fmt.Fprintf(&buf, "payload bytes=%d crc32=%08x\n",
		payload.Len(), crc32.ChecksumIEEE(payload.Bytes()))
	buf.Write(payload.Bytes())

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Fault site "checkpoint.write": tests chop bytes off the file here
	// to prove that Load detects a crash-truncated checkpoint.
	if n := faultinject.TruncateBy("checkpoint.write"); n > 0 {
		if err := tmp.Truncate(int64(buf.Len() - n)); err != nil {
			tmp.Close()
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads and verifies a checkpoint written by Save. Truncated,
// altered, or foreign files fail with a descriptive error rather than
// producing a silently wrong model.
func Load(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)

	line, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: missing header: %w", path, err)
	}
	if line != magic {
		return nil, fmt.Errorf("checkpoint %s: not a checkpoint file (header %q)", path, line)
	}
	st := &State{}
	line, err = readLine(br)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: truncated header: %w", path, err)
	}
	if err := parseFields(line, map[string]func(string) error{
		"level":  func(v string) (e error) { st.Level, e = strconv.Atoi(v); return },
		"epoch":  func(v string) (e error) { st.Epoch, e = strconv.Atoi(v); return },
		"step":   func(v string) (e error) { st.Step, e = strconv.ParseFloat(v, 64); return },
		"seed":   func(v string) (e error) { st.Seed, e = strconv.ParseUint(v, 10, 64); return },
		"loglik": func(v string) (e error) { st.LogLik, e = strconv.ParseFloat(v, 64); return },
	}); err != nil {
		return nil, fmt.Errorf("checkpoint %s: bad state line: %w", path, err)
	}
	line, err = readLine(br)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: truncated header: %w", path, err)
	}
	var wantLen int
	var wantCRC uint32
	if err := parseFields(strings.TrimPrefix(line, "payload "), map[string]func(string) error{
		"bytes": func(v string) (e error) { wantLen, e = strconv.Atoi(v); return },
		"crc32": func(v string) (e error) {
			c, e := strconv.ParseUint(v, 16, 32)
			wantCRC = uint32(c)
			return e
		},
	}); err != nil {
		return nil, fmt.Errorf("checkpoint %s: bad payload line: %w", path, err)
	}
	payload := make([]byte, wantLen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("checkpoint %s: corrupt: payload truncated (want %d bytes): %w", path, wantLen, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("checkpoint %s: corrupt: trailing bytes after %d-byte payload", path, wantLen)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("checkpoint %s: corrupt: payload crc32 %08x, header says %08x", path, got, wantCRC)
	}
	m, err := embed.Read(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: corrupt model payload: %w", path, err)
	}
	st.Model = m
	return st, nil
}

// Resume is Load, except a missing file is not an error: it returns
// (nil, nil) so "resume if there is anything to resume from" is one
// call.
func Resume(path string) (*State, error) {
	st, err := Load(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	return st, err
}

// readLine returns the next line without its terminator; a missing
// newline at EOF is an error because Save always terminates lines.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\n"), nil
}

// parseFields parses "k1=v1 k2=v2 ..." requiring every registered key
// exactly once and no unknown keys.
func parseFields(line string, want map[string]func(string) error) error {
	seen := make(map[string]bool, len(want))
	for _, field := range strings.Fields(line) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("malformed field %q", field)
		}
		parse, known := want[k]
		if !known {
			return fmt.Errorf("unknown field %q", k)
		}
		if seen[k] {
			return fmt.Errorf("duplicate field %q", k)
		}
		seen[k] = true
		if err := parse(v); err != nil {
			return fmt.Errorf("field %q: %v", field, err)
		}
	}
	for k := range want {
		if !seen[k] {
			return fmt.Errorf("missing field %q", k)
		}
	}
	return nil
}
