package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"viralcast/internal/embed"
	"viralcast/internal/faultinject"
	"viralcast/internal/xrand"
)

func testState(t *testing.T) *State {
	t.Helper()
	m := embed.NewModel(12, 3)
	m.InitUniform(xrand.New(9), 0.1, 0.9)
	return &State{Model: m, Level: 2, Epoch: 17, Step: 0.125, Seed: 42, LogLik: -987.25}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	want := testState(t)
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != want.Level || got.Epoch != want.Epoch ||
		got.Step != want.Step || got.Seed != want.Seed || got.LogLik != want.LogLik {
		t.Fatalf("state mismatch: got %+v", got)
	}
	if got.Model.A.FrobeniusDist(want.Model.A) != 0 || got.Model.B.FrobeniusDist(want.Model.B) != 0 {
		t.Fatal("model not restored bit-for-bit")
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt")
	if err := Save(path, testState(t)); err != nil {
		t.Fatal(err)
	}
	// Overwriting goes through the same temp+rename dance.
	if err := Save(path, testState(t)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "ckpt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after save: %v", names)
	}
}

func TestLoadDetectsInjectedTruncation(t *testing.T) {
	inj := faultinject.NewInjector()
	inj.Arm(faultinject.Fault{Site: "checkpoint.write", Action: faultinject.Truncate, Hit: 1, Bytes: 100})
	defer faultinject.Activate(inj)()
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := Save(path, testState(t)); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil {
		t.Fatal("truncated checkpoint loaded without error")
	}
	if !strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("unhelpful corruption error: %v", err)
	}
}

func TestLoadDetectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := Save(path, testState(t)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-20] ^= 0x04 // flip one payload bit
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "crc32") {
		t.Fatalf("bit flip not caught: %v", err)
	}
}

func TestLoadDetectsTrailingGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := Save(path, testState(t)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("extra\n")
	f.Close()
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing garbage not caught: %v", err)
	}
}

func TestLoadRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notckpt")
	if err := os.WriteFile(path, []byte("node,kind,topic0\n0,0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "not a checkpoint") {
		t.Fatalf("foreign file accepted: %v", err)
	}
}

func TestResumeMissingFileIsNil(t *testing.T) {
	st, err := Resume(filepath.Join(t.TempDir(), "nope"))
	if st != nil || err != nil {
		t.Fatalf("got %v, %v; want nil, nil", st, err)
	}
}

func TestSaveRejectsNilState(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), "ckpt"), nil); err == nil {
		t.Fatal("nil state accepted")
	}
	if err := Save(filepath.Join(t.TempDir(), "ckpt"), &State{}); err == nil {
		t.Fatal("nil model accepted")
	}
}
