// Package vecmath provides the small dense linear-algebra substrate used by
// the embedding model: float64 vectors, row-major matrices, and the
// non-negative projection required by the paper's projected gradient
// ascent. It is deliberately minimal and allocation-conscious; all hot
// paths operate in place on caller-provided slices.
package vecmath

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
// It panics if the lengths differ, as that is always a programming
// error. The panic message is a plain constant: formatting the lengths
// would push Dot past the inlining budget, and Dot is called once per
// element pair inside O(n²) loops where the call overhead is measurable.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	// Pin b's length to a's so the compiler proves b[i] in bounds and
	// drops the per-element check inside the hot loop.
	b = b[:len(a)]
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Axpy computes dst += alpha*x element-wise. Like Dot it stays within
// the inlining budget: constant panic message, pinned lengths.
func Axpy(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic("vecmath: Axpy length mismatch")
	}
	dst = dst[:len(x)] // bounds-check hoist, as in Dot
	for i, xv := range x {
		dst[i] += alpha * xv
	}
}

// Add computes dst += x element-wise.
func Add(x, dst []float64) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("vecmath: Add length mismatch %d != %d", len(x), len(dst)))
	}
	for i, xv := range x {
		dst[i] += xv
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Copy copies src into dst; lengths must match.
func Copy(dst, src []float64) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("vecmath: Copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Norm2 returns the Euclidean norm of x, guarding against overflow for
// large components by scaling.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Dist2 length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum element of x and its index.
// It panics on an empty slice.
func Max(x []float64) (float64, int) {
	if len(x) == 0 {
		panic("vecmath: Max of empty slice")
	}
	best, at := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, at = v, i+1
		}
	}
	return best, at
}

// Gemv computes the matrix–vector product of a row-major block against
// a weight vector: dst[i] = w · x[i*stride : i*stride+len(w)] for every
// row i in [0, len(dst)). It is the wide-batch form of calling Dot once
// per row, and is guaranteed bit-identical to that: each row's
// accumulator adds the products w[j]*row[j] in the same j order a Dot
// over that row would, so batched classifier margins equal
// single-request margins down to the last ULP. The blocking is over
// rows, not the accumulation: four rows share each load of w, which is
// what makes the batch form faster, while every row keeps its own
// strictly sequential accumulator.
//
// stride may exceed len(w) (padded rows); x must hold len(dst) full
// strides.
func Gemv(dst, x []float64, stride int, w []float64) {
	if len(w) > stride {
		panic("vecmath: Gemv weight vector longer than the row stride")
	}
	if len(x) < len(dst)*stride {
		panic("vecmath: Gemv block shorter than rows*stride")
	}
	rows := len(dst)
	i := 0
	for ; i+4 <= rows; i += 4 {
		r0 := x[(i+0)*stride : (i+0)*stride+len(w)]
		r1 := x[(i+1)*stride : (i+1)*stride+len(w)]
		r2 := x[(i+2)*stride : (i+2)*stride+len(w)]
		r3 := x[(i+3)*stride : (i+3)*stride+len(w)]
		var s0, s1, s2, s3 float64
		for j, wv := range w {
			s0 += wv * r0[j]
			s1 += wv * r1[j]
			s2 += wv * r2[j]
			s3 += wv * r3[j]
		}
		dst[i+0] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < rows; i++ {
		dst[i] = Dot(w, x[i*stride:i*stride+len(w)])
	}
}

// ProjectNonneg clamps negative elements of x to zero in place; this is
// the projection step of projected gradient ascent onto the feasible set
// A,B >= 0 (paper Eqs. 10-11).
func ProjectNonneg(x []float64) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// AllNonneg reports whether every element of x is >= 0.
func AllNonneg(x []float64) bool {
	for _, v := range x {
		if v < 0 {
			return false
		}
	}
	return true
}

// AllFinite reports whether every element of x is finite (no NaN/Inf).
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Matrix is a dense row-major matrix. Rows index nodes; columns index
// latent topics in the embedding model. The zero value is an empty matrix.
type Matrix struct {
	RowsN int
	ColsN int
	Data  []float64 // len == RowsN*ColsN
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: NewMatrix negative dims %dx%d", rows, cols))
	}
	return &Matrix{RowsN: rows, ColsN: cols, Data: make([]float64, rows*cols)}
}

// Row returns the i-th row as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.ColsN : (i+1)*m.ColsN]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.ColsN+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.ColsN+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.RowsN, m.ColsN)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src's contents into m; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.RowsN != src.RowsN || m.ColsN != src.ColsN {
		panic(fmt.Sprintf("vecmath: CopyFrom shape mismatch %dx%d != %dx%d",
			m.RowsN, m.ColsN, src.RowsN, src.ColsN))
	}
	copy(m.Data, src.Data)
}

// FillConst sets every entry to v.
func (m *Matrix) FillConst(v float64) { Fill(m.Data, v) }

// ProjectNonneg clamps all negative entries to zero.
func (m *Matrix) ProjectNonneg() { ProjectNonneg(m.Data) }

// FrobeniusDist returns the Frobenius distance between m and o.
func (m *Matrix) FrobeniusDist(o *Matrix) float64 {
	if m.RowsN != o.RowsN || m.ColsN != o.ColsN {
		panic("vecmath: FrobeniusDist shape mismatch")
	}
	var s float64
	for i, v := range m.Data {
		d := v - o.Data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Clamp bounds x into [lo, hi] and returns it.
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
