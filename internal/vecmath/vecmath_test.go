package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1}, []float64{2}, 2},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{-1, 0.5}, []float64{2, 4}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Dot(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot did not panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, dst)
	want := []float64{3, 4, 5}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Axpy result %v, want %v", dst, want)
		}
	}
}

func TestAddScaleFillCopy(t *testing.T) {
	dst := []float64{1, 2}
	Add([]float64{3, 4}, dst)
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("Add result %v", dst)
	}
	Scale(0.5, dst)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("Scale result %v", dst)
	}
	Fill(dst, 7)
	if dst[0] != 7 || dst[1] != 7 {
		t.Fatalf("Fill result %v", dst)
	}
	src := []float64{9, 8}
	Copy(dst, src)
	if dst[0] != 9 || dst[1] != 8 {
		t.Fatalf("Copy result %v", dst)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm2(3,4) = %v", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v", got)
	}
	// Overflow-safe scaling: naive sum of squares would overflow.
	big := []float64{1e200, 1e200}
	if got := Norm2(big); math.IsInf(got, 0) || !almostEq(got, 1e200*math.Sqrt2, 1e-10) {
		t.Errorf("Norm2 overflow guard failed: %v", got)
	}
}

func TestDist2(t *testing.T) {
	if got := Dist2([]float64{0, 0}, []float64{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestSumMax(t *testing.T) {
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %v", got)
	}
	v, i := Max([]float64{1, 5, 3})
	if v != 5 || i != 1 {
		t.Errorf("Max = %v at %d", v, i)
	}
	v, i = Max([]float64{-2, -1, -3})
	if v != -1 || i != 1 {
		t.Errorf("Max negatives = %v at %d", v, i)
	}
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max did not panic on empty")
		}
	}()
	Max(nil)
}

func TestProjectNonneg(t *testing.T) {
	x := []float64{-1, 0, 2, -0.5}
	ProjectNonneg(x)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("ProjectNonneg result %v, want %v", x, want)
		}
	}
	if !AllNonneg(x) {
		t.Fatal("AllNonneg false after projection")
	}
}

// Property: projection is idempotent and never increases any element's
// distance from the feasible set.
func TestProjectNonnegPropertyIdempotent(t *testing.T) {
	f := func(x []float64) bool {
		y := append([]float64(nil), x...)
		ProjectNonneg(y)
		if !AllNonneg(y) {
			return false
		}
		z := append([]float64(nil), y...)
		ProjectNonneg(z)
		for i := range y {
			if y[i] != z[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestDotPropertySymmetric(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for _, v := range append(append([]float64(nil), a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip degenerate inputs
			}
		}
		return almostEq(Dot(a, b), Dot(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Dist2.
func TestDist2PropertyTriangle(t *testing.T) {
	f := func(a, b, c []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if len(c) < n {
			n = len(c)
		}
		a, b, c = a[:n], b[:n], c[:n]
		for _, s := range [][]float64{a, b, c} {
			for _, v := range s {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
					return true
				}
			}
		}
		return Dist2(a, c) <= Dist2(a, b)+Dist2(b, c)+1e-9*(1+Dist2(a, b)+Dist2(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Error("AllFinite false on finite input")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("AllFinite true on NaN")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("AllFinite true on Inf")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 2)
	if m.RowsN != 3 || m.ColsN != 2 || len(m.Data) != 6 {
		t.Fatalf("NewMatrix shape wrong: %+v", m)
	}
	m.Set(1, 1, 5)
	if m.At(1, 1) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone must deep-copy")
	}
	m2 := NewMatrix(3, 2)
	m2.CopyFrom(m)
	if m2.At(1, 1) != 5 {
		t.Fatal("CopyFrom failed")
	}
	m2.FillConst(1)
	if m2.At(2, 1) != 1 {
		t.Fatal("FillConst failed")
	}
}

func TestMatrixProjectAndFrobenius(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, -3)
	m.Set(1, 1, 4)
	m.ProjectNonneg()
	if m.At(0, 0) != 0 || m.At(1, 1) != 4 {
		t.Fatalf("matrix projection wrong: %+v", m.Data)
	}
	o := NewMatrix(2, 2)
	if got := m.FrobeniusDist(o); !almostEq(got, 4, 1e-12) {
		t.Errorf("FrobeniusDist = %v, want 4", got)
	}
}

func TestMatrixShapePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	o := NewMatrix(2, 3)
	for name, fn := range map[string]func(){
		"CopyFrom":      func() { m.CopyFrom(o) },
		"FrobeniusDist": func() { m.FrobeniusDist(o) },
		"NewMatrixNeg":  func() { NewMatrix(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on shape mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
}

// TestGemvBitIdenticalToDot is the contract the batched predict path
// stands on: a Gemv over a row-major block must produce, for every row,
// exactly the float64 Dot would produce over that row — not merely close.
func TestGemvBitIdenticalToDot(t *testing.T) {
	for _, tc := range []struct{ rows, stride, dim int }{
		{1, 3, 3}, {3, 3, 3}, {4, 3, 3}, {7, 5, 5}, {256, 3, 3}, {9, 8, 5},
	} {
		x := make([]float64, tc.rows*tc.stride)
		for i := range x {
			// Awkward magnitudes so any reassociation shows up in the bits.
			x[i] = float64(i%13)*1e-3 + float64(i%7)*1e8
		}
		w := make([]float64, tc.dim)
		for j := range w {
			w[j] = float64(j+1) * 0.3
		}
		dst := make([]float64, tc.rows)
		Gemv(dst, x, tc.stride, w)
		for i := 0; i < tc.rows; i++ {
			want := Dot(w, x[i*tc.stride:i*tc.stride+tc.dim])
			if dst[i] != want {
				t.Fatalf("rows=%d stride=%d: row %d Gemv=%x Dot=%x", tc.rows, tc.stride, i, dst[i], want)
			}
		}
	}
}

func TestGemvPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"weight longer than stride": func() { Gemv(make([]float64, 1), make([]float64, 4), 2, make([]float64, 3)) },
		"block too short":           func() { Gemv(make([]float64, 3), make([]float64, 4), 2, make([]float64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gemv did not panic: %s", name)
				}
			}()
			fn()
		}()
	}
}
