// Kernel benchmarks: Dot and Axpy are the innermost loops of both the
// likelihood/gradient computation and the influence-maximization
// objective, so their per-element cost bounds everything above them.
// scripts/bench.sh runs these alongside the compute-plane benchmarks so
// the kernel cost stays visible in BENCH_serve.json.
package vecmath

import "testing"

// benchSizes spans the regimes the model actually uses: K-sized topic
// vectors (small) and row-major bulk passes (large).
var benchSizes = []struct {
	name string
	n    int
}{
	{"K16", 16},
	{"K64", 64},
	{"N4096", 4096},
}

func benchVectors(n int) (a, b []float64) {
	a = make([]float64, n)
	b = make([]float64, n)
	for i := range a {
		a[i] = float64(i%7) * 0.25
		b[i] = float64(i%5) * 0.5
	}
	return a, b
}

var sinkFloat float64

func BenchmarkDot(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			x, y := benchVectors(sz.n)
			b.SetBytes(int64(16 * sz.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = Dot(x, y)
			}
		})
	}
}

func BenchmarkAxpy(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			x, dst := benchVectors(sz.n)
			b.SetBytes(int64(16 * sz.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Axpy(0.5, x, dst)
			}
		})
	}
}

// BenchmarkGemv measures the blocked batch kernel over the shapes the
// batched predict plane uses: a rows x stride feature block against a
// stride-length weight vector. Compare ns/row here against Dot/K16 to
// see what the shared weight loads buy.
func BenchmarkGemv(b *testing.B) {
	for _, sz := range []struct {
		name         string
		rows, stride int
	}{
		{"B16xK3", 16, 3},
		{"B256xK3", 256, 3},
		{"B256xK16", 256, 16},
	} {
		b.Run(sz.name, func(b *testing.B) {
			x := make([]float64, sz.rows*sz.stride)
			for i := range x {
				x[i] = float64(i%7) * 0.25
			}
			w := make([]float64, sz.stride)
			for j := range w {
				w[j] = float64(j%5) * 0.5
			}
			dst := make([]float64, sz.rows)
			b.SetBytes(int64(8 * sz.rows * sz.stride))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Gemv(dst, x, sz.stride, w)
			}
		})
	}
}
