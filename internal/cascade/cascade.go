// Package cascade defines information cascades — timestamped sequences of
// node infections (paper Definition 1) — plus validation, statistics, and
// a text serialization. The continuous-time simulator that generates
// cascades from a graph and ground-truth embeddings lives in simulate.go.
package cascade

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Infection records that Node became infected (reported the event, adopted
// the message) at Time. Each node appears at most once per cascade: the
// underlying process is SI — no recovery, no re-adoption.
type Infection struct {
	Node int
	Time float64
}

// Cascade is a realization of the stochastic propagation process: a
// time-ordered sequence of distinct infections.
type Cascade struct {
	ID         int
	Infections []Infection
}

// Size returns the number of infected nodes.
func (c *Cascade) Size() int { return len(c.Infections) }

// Duration returns the time between the first and last infection, or 0
// for cascades with fewer than two infections.
func (c *Cascade) Duration() float64 {
	if len(c.Infections) < 2 {
		return 0
	}
	return c.Infections[len(c.Infections)-1].Time - c.Infections[0].Time
}

// Nodes returns the infected node ids in infection order.
func (c *Cascade) Nodes() []int {
	out := make([]int, len(c.Infections))
	for i, inf := range c.Infections {
		out[i] = inf.Node
	}
	return out
}

// NodeSet returns the set of infected nodes.
func (c *Cascade) NodeSet() map[int]bool {
	s := make(map[int]bool, len(c.Infections))
	for _, inf := range c.Infections {
		s[inf.Node] = true
	}
	return s
}

// Prefix returns the sub-cascade of infections with Time <= cutoff —
// the "early adopters" used by the prediction pipeline (paper §V).
// The returned cascade shares no storage with c.
func (c *Cascade) Prefix(cutoff float64) *Cascade {
	out := &Cascade{ID: c.ID}
	for _, inf := range c.Infections {
		if inf.Time <= cutoff {
			out.Infections = append(out.Infections, inf)
		}
	}
	return out
}

// PrefixView is the allocation-free form of Prefix for the common case:
// when the infections with Time <= cutoff form a contiguous head of the
// sequence (always true for time-sorted cascades), it returns a
// sub-cascade aliasing c's storage. ok reports whether the view is
// valid; when early infections are interleaved with later ones the
// caller must fall back to Prefix. A valid view holds exactly the
// infections Prefix would copy, in the same order, so downstream float
// math is identical either way.
func (c *Cascade) PrefixView(cutoff float64) (Cascade, bool) {
	k := 0
	for k < len(c.Infections) && c.Infections[k].Time <= cutoff {
		k++
	}
	for _, inf := range c.Infections[k:] {
		if inf.Time <= cutoff {
			return Cascade{}, false
		}
	}
	return Cascade{ID: c.ID, Infections: c.Infections[:k:k]}, true
}

// Validate checks the structural invariants a well-formed cascade must
// satisfy: at least one infection, distinct non-negative node ids (< n if
// n > 0), non-negative times, and non-decreasing time order.
func (c *Cascade) Validate(n int) error {
	if len(c.Infections) == 0 {
		return fmt.Errorf("cascade %d: empty", c.ID)
	}
	seen := make(map[int]bool, len(c.Infections))
	prev := -1.0
	for i, inf := range c.Infections {
		if inf.Node < 0 {
			return fmt.Errorf("cascade %d: negative node id %d at index %d", c.ID, inf.Node, i)
		}
		if n > 0 && inf.Node >= n {
			return fmt.Errorf("cascade %d: node id %d out of range [0,%d)", c.ID, inf.Node, n)
		}
		if seen[inf.Node] {
			return fmt.Errorf("cascade %d: node %d infected twice (SI process forbids re-infection)", c.ID, inf.Node)
		}
		seen[inf.Node] = true
		if math.IsNaN(inf.Time) || math.IsInf(inf.Time, 0) {
			return fmt.Errorf("cascade %d: non-finite time %v at index %d", c.ID, inf.Time, i)
		}
		if inf.Time < 0 {
			return fmt.Errorf("cascade %d: negative time %v at index %d", c.ID, inf.Time, i)
		}
		if inf.Time < prev {
			return fmt.Errorf("cascade %d: infections out of time order at index %d (%v < %v)", c.ID, i, inf.Time, prev)
		}
		prev = inf.Time
	}
	return nil
}

// SortByTime sorts the infections in place by (Time, Node); ties on time
// are broken by node id for determinism.
func (c *Cascade) SortByTime() {
	sort.Slice(c.Infections, func(i, j int) bool {
		a, b := c.Infections[i], c.Infections[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Node < b.Node
	})
}

// ValidateAll validates every cascade against node universe size n.
func ValidateAll(cs []*Cascade, n int) error {
	for _, c := range cs {
		if err := c.Validate(n); err != nil {
			return err
		}
	}
	return nil
}

// Sizes returns the size of every cascade.
func Sizes(cs []*Cascade) []int {
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = c.Size()
	}
	return out
}

// MeanSize returns the average cascade size, or 0 for no cascades.
func MeanSize(cs []*Cascade) float64 {
	if len(cs) == 0 {
		return 0
	}
	var s int
	for _, c := range cs {
		s += c.Size()
	}
	return float64(s) / float64(len(cs))
}

// TotalInfections returns the summed size of all cascades.
func TotalInfections(cs []*Cascade) int {
	var s int
	for _, c := range cs {
		s += c.Size()
	}
	return s
}

// Write encodes cascades as text, one infection per line:
//
//	cascadeID,node,time
//
// in cascade order. Decode with Read.
func Write(w io.Writer, cs []*Cascade) error {
	bw := bufio.NewWriter(w)
	for _, c := range cs {
		for _, inf := range c.Infections {
			// FormatFloat with precision -1 emits the shortest string that
			// parses back to exactly the same float64.
			if _, err := fmt.Fprintf(bw, "%d,%d,%s\n", c.ID, inf.Node,
				strconv.FormatFloat(inf.Time, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// maxLineBytes bounds a single input line in Read. Real cascade files
// have short lines; the limit only exists so a corrupt or non-text file
// fails with a clear error instead of unbounded memory growth. A
// variable rather than a constant so tests can lower it.
var maxLineBytes = 64 * 1024 * 1024

// Read decodes the format produced by Write. Cascades are returned in
// first-appearance order; infections keep file order. Every parse error
// names the offending 1-based line.
func Read(r io.Reader) ([]*Cascade, error) {
	sc := bufio.NewScanner(r)
	// The scanner's effective limit is max(maxLineBytes, cap(buf)), so
	// the initial buffer must not exceed the configured limit.
	initial := 64 * 1024
	if initial > maxLineBytes {
		initial = maxLineBytes
	}
	sc.Buffer(make([]byte, 0, initial), maxLineBytes)
	byID := map[int]*Cascade{}
	var order []*Cascade
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("cascade: line %d: want 3 fields, got %d", lineNo, len(parts))
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("cascade: line %d: bad cascade id %q", lineNo, parts[0])
		}
		node, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("cascade: line %d: bad node id %q", lineNo, parts[1])
		}
		tm, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("cascade: line %d: bad time %q", lineNo, parts[2])
		}
		c, ok := byID[id]
		if !ok {
			c = &Cascade{ID: id}
			byID[id] = c
			order = append(order, c)
		}
		c.Infections = append(c.Infections, Infection{Node: node, Time: tm})
	}
	if err := sc.Err(); err != nil {
		// The scanner stops before the offending line, so lineNo+1 is the
		// line that failed to read.
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("cascade: line %d: longer than the %d-byte limit (not a cascade file?)",
				lineNo+1, maxLineBytes)
		}
		return nil, fmt.Errorf("cascade: read failed at line %d: %w", lineNo+1, err)
	}
	return order, nil
}
