package cascade

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the cascade parser never panics and that everything
// it accepts survives a write/read roundtrip structurally.
func FuzzRead(f *testing.F) {
	f.Add("1,0,0\n1,2,1.5\n")
	f.Add("# comment\n\n3,7,0.25\n")
	f.Add("x,y,z\n")
	f.Add("1,0\n")
	f.Add("9999999999999999999999,0,0\n")
	f.Add("1,0,NaN\n")
	f.Add("1,0,1e308\n1,1,1e309\n")
	f.Fuzz(func(t *testing.T, input string) {
		cs, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Whatever parsed must re-encode and re-parse to the same shape.
		var buf bytes.Buffer
		if err := Write(&buf, cs); err != nil {
			t.Fatalf("Write failed on parsed data: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(again) != len(cs) {
			t.Fatalf("roundtrip changed cascade count: %d -> %d", len(cs), len(again))
		}
		for i := range cs {
			if cs[i].ID != again[i].ID || cs[i].Size() != again[i].Size() {
				t.Fatalf("roundtrip changed cascade %d", i)
			}
		}
	})
}
