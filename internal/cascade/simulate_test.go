package cascade

import (
	"math"
	"testing"

	"viralcast/internal/graph"
	"viralcast/internal/sbm"
	"viralcast/internal/vecmath"
	"viralcast/internal/xrand"
)

// lineGraph builds 0 -> 1 -> 2 -> ... -> n-1.
func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func constMatrix(rows, cols int, v float64) *vecmath.Matrix {
	m := vecmath.NewMatrix(rows, cols)
	m.FillConst(v)
	return m
}

func TestNewSimulatorValidation(t *testing.T) {
	g := lineGraph(t, 3)
	a, b := constMatrix(3, 2, 1), constMatrix(3, 2, 1)
	if _, err := NewSimulator(g, a, b, 10); err != nil {
		t.Fatalf("valid simulator rejected: %v", err)
	}
	cases := []struct {
		name string
		fn   func() (*Simulator, error)
	}{
		{"nil graph", func() (*Simulator, error) { return NewSimulator(nil, a, b, 10) }},
		{"rows mismatch", func() (*Simulator, error) { return NewSimulator(g, constMatrix(2, 2, 1), b, 10) }},
		{"topic mismatch", func() (*Simulator, error) { return NewSimulator(g, constMatrix(3, 3, 1), b, 10) }},
		{"bad window", func() (*Simulator, error) { return NewSimulator(g, a, b, 0) }},
	}
	for _, c := range cases {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	neg := constMatrix(3, 2, 1)
	neg.Set(0, 0, -1)
	if _, err := NewSimulator(g, neg, b, 10); err == nil {
		t.Error("negative embedding accepted")
	}
}

func TestRunSeedAlwaysInfected(t *testing.T) {
	g := lineGraph(t, 5)
	s, err := NewSimulator(g, constMatrix(5, 2, 0), constMatrix(5, 2, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Run(0, 2, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 1 || c.Infections[0].Node != 2 || c.Infections[0].Time != 0 {
		t.Fatalf("zero-rate cascade = %+v", c.Infections)
	}
}

func TestRunSeedRange(t *testing.T) {
	g := lineGraph(t, 3)
	s, _ := NewSimulator(g, constMatrix(3, 1, 1), constMatrix(3, 1, 1), 1)
	if _, err := s.Run(0, 3, xrand.New(1)); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := s.Run(0, -1, xrand.New(1)); err == nil {
		t.Error("negative seed accepted")
	}
}

func TestRunProducesValidOrderedCascade(t *testing.T) {
	p := sbm.Params{N: 120, BlockSize: 30, Alpha: 0.3, Beta: 0.01}
	g, _, err := sbm.Generate(p, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	a, b := constMatrix(120, 3, 0.5), constMatrix(120, 3, 0.5)
	s, _ := NewSimulator(g, a, b, 2)
	rng := xrand.New(3)
	for i := 0; i < 50; i++ {
		c, err := s.Run(i, rng.Intn(120), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(120); err != nil {
			t.Fatalf("simulator produced invalid cascade: %v", err)
		}
	}
}

func TestObservationWindowRespected(t *testing.T) {
	g := lineGraph(t, 100)
	// Rate 1 per hop: expect ~window hops within the window.
	s, _ := NewSimulator(g, constMatrix(100, 1, 1), constMatrix(100, 1, 1), 5)
	rng := xrand.New(4)
	for i := 0; i < 200; i++ {
		c, _ := s.Run(i, 0, rng)
		for _, inf := range c.Infections {
			if inf.Time > 5 {
				t.Fatalf("infection at %v beyond window 5", inf.Time)
			}
		}
	}
}

func TestLineGraphDelayDistribution(t *testing.T) {
	// On the line graph with rate lambda, the first hop delay is
	// Exp(lambda); its sample mean must be ~1/lambda.
	lambda := 2.0
	g := lineGraph(t, 2)
	a := constMatrix(2, 1, lambda)
	b := constMatrix(2, 1, 1)
	s, _ := NewSimulator(g, a, b, 1e9)
	rng := xrand.New(5)
	const n = 50000
	var sum float64
	reached := 0
	for i := 0; i < n; i++ {
		c, _ := s.Run(i, 0, rng)
		if c.Size() == 2 {
			sum += c.Infections[1].Time
			reached++
		}
	}
	if reached != n {
		t.Fatalf("with infinite window all runs must reach node 1; got %d/%d", reached, n)
	}
	mean := sum / float64(reached)
	if math.Abs(mean-1/lambda) > 0.02 {
		t.Errorf("hop delay mean %v, want %v", mean, 1/lambda)
	}
}

func TestEarliestSourceWins(t *testing.T) {
	// Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3. Node 3's infection time must
	// equal the min over both paths; it must be infected exactly once.
	b := graph.NewBuilder(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	s, _ := NewSimulator(g, constMatrix(4, 1, 1), constMatrix(4, 1, 1), 1e9)
	rng := xrand.New(6)
	for i := 0; i < 500; i++ {
		c, _ := s.Run(i, 0, rng)
		if err := c.Validate(4); err != nil {
			t.Fatal(err)
		}
		if c.Size() != 4 {
			t.Fatalf("diamond with infinite window must fully infect, size=%d", c.Size())
		}
		var t1, t2, t3 float64
		for _, inf := range c.Infections {
			switch inf.Node {
			case 1:
				t1 = inf.Time
			case 2:
				t2 = inf.Time
			case 3:
				t3 = inf.Time
			}
		}
		if t3 <= t1 && t3 <= t2 {
			t.Fatalf("node 3 infected at %v before both parents (%v, %v)", t3, t1, t2)
		}
	}
}

func TestHigherRateSpreadsFurther(t *testing.T) {
	p := sbm.Params{N: 200, BlockSize: 40, Alpha: 0.25, Beta: 0.005}
	g, _, err := sbm.Generate(p, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	run := func(rate float64, seed uint64) float64 {
		a, b := constMatrix(200, 2, rate), constMatrix(200, 2, rate)
		s, _ := NewSimulator(g, a, b, 3)
		cs, err := s.RunMany(0, 100, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return MeanSize(cs)
	}
	slow := run(0.05, 8)
	fast := run(0.5, 8)
	if fast <= slow {
		t.Errorf("higher rate should spread further: fast=%v slow=%v", fast, slow)
	}
}

func TestRunManyDeterministic(t *testing.T) {
	g := lineGraph(t, 10)
	s, _ := NewSimulator(g, constMatrix(10, 1, 1), constMatrix(10, 1, 1), 4)
	cs1, _ := s.RunMany(0, 20, xrand.New(9))
	cs2, _ := s.RunMany(0, 20, xrand.New(9))
	for i := range cs1 {
		if cs1[i].Size() != cs2[i].Size() {
			t.Fatalf("same seed, cascade %d sizes differ", i)
		}
		for j := range cs1[i].Infections {
			if cs1[i].Infections[j] != cs2[i].Infections[j] {
				t.Fatalf("same seed, cascade %d infection %d differs", i, j)
			}
		}
	}
	if _, err := s.RunMany(0, -1, xrand.New(1)); err == nil {
		t.Error("negative count accepted")
	}
}

func BenchmarkSimulatorRun(b *testing.B) {
	p := sbm.Params{N: 1000, BlockSize: 40, Alpha: 0.2, Beta: 0.001}
	g, _, err := sbm.Generate(p, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	a, bm := constMatrix(1000, 4, 0.15), constMatrix(1000, 4, 0.15)
	s, err := NewSimulator(g, a, bm, 5)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(i, rng.Intn(1000), rng); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRunSeedsScratchBitIdentical: a trial run on a reused scratch must
// be bit-identical to the same trial on fresh allocations — same
// infection order, same nodes, same float64 bits on every time — in
// both dense and graph mode, across scratch reuse, early-stop caps, and
// multi-seed campaigns. This is the contract that lets the scenario
// engine pool trial buffers without perturbing cached results.
func TestRunSeedsScratchBitIdentical(t *testing.T) {
	rng := xrand.New(7)
	n, k := 40, 3
	a, bm := vecmath.NewMatrix(n, k), vecmath.NewMatrix(n, k)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	for i := range bm.Data {
		bm.Data[i] = rng.Float64()
	}
	g := lineGraph(t, n)
	dense, err := NewDenseSimulator(a, bm, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSimulator(g, a, bm, 1.5)
	if err != nil {
		t.Fatal(err)
	}

	ws := new(TrialScratch) // deliberately reused across every case below
	for trial := 0; trial < 40; trial++ {
		sim := dense
		if trial%2 == 1 {
			sim = sparse
		}
		seeds := []int{trial % n, (trial * 7) % n}
		maxSize := 0
		if trial%3 == 0 {
			maxSize = 5
		}
		seed := uint64(trial + 1)
		want, err := sim.RunSeeds(trial, seeds, maxSize, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.RunSeedsScratch(ws, trial, seeds, maxSize, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID || len(got.Infections) != len(want.Infections) {
			t.Fatalf("trial %d: scratch run %d infections vs %d fresh", trial, len(got.Infections), len(want.Infections))
		}
		for i := range want.Infections {
			w, g := want.Infections[i], got.Infections[i]
			if w.Node != g.Node || math.Float64bits(w.Time) != math.Float64bits(g.Time) {
				t.Fatalf("trial %d infection %d: scratch (%d, %x) != fresh (%d, %x)",
					trial, i, g.Node, math.Float64bits(g.Time), w.Node, math.Float64bits(w.Time))
			}
		}
	}

	// Error paths must not poison the scratch for the next trial.
	if _, err := dense.RunSeedsScratch(ws, 0, nil, 0, xrand.New(1)); err == nil {
		t.Fatal("empty seed set accepted")
	}
	if _, err := dense.RunSeedsScratch(ws, 0, []int{n}, 0, xrand.New(1)); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	want, _ := dense.RunSeeds(9, []int{3}, 0, xrand.New(9))
	got, err := dense.RunSeedsScratch(ws, 9, []int{3}, 0, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Infections) != len(want.Infections) {
		t.Fatalf("post-error trial diverged: %d vs %d infections", len(got.Infections), len(want.Infections))
	}
}
