package cascade

import (
	"testing"
	"testing/quick"

	"viralcast/internal/graph"
	"viralcast/internal/vecmath"
	"viralcast/internal/xrand"
)

// Property: every simulated cascade (on random graphs with random
// non-negative embeddings) is a valid cascade whose seed is the first
// infection at time 0, and whose infections all lie inside the window.
func TestSimulatorInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(30)
		b := graph.NewBuilder(n)
		edges := rng.Intn(4 * n)
		for e := 0; e < edges; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = b.AddEdge(u, v, 1)
			}
		}
		g := b.Build()
		k := 1 + rng.Intn(3)
		a := vecmath.NewMatrix(n, k)
		bm := vecmath.NewMatrix(n, k)
		for i := range a.Data {
			a.Data[i] = rng.Float64()
		}
		for i := range bm.Data {
			bm.Data[i] = rng.Float64()
		}
		window := 0.1 + 5*rng.Float64()
		sim, err := NewSimulator(g, a, bm, window)
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			start := rng.Intn(n)
			c, err := sim.Run(trial, start, rng)
			if err != nil {
				return false
			}
			if c.Validate(n) != nil {
				return false
			}
			if c.Infections[0].Node != start || c.Infections[0].Time != 0 {
				return false
			}
			for _, inf := range c.Infections {
				if inf.Time > window {
					return false
				}
			}
			// Reachability: every infected node (except the seed) must be
			// reachable from an earlier-infected node through a graph edge.
			infectedBefore := map[int]bool{start: true}
			for _, inf := range c.Infections[1:] {
				ok := false
				for u := range infectedBefore {
					if _, exists := g.Weight(u, inf.Node); exists {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
				infectedBefore[inf.Node] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the Prefix operation is consistent with Validate and with
// monotone cutoffs: Prefix(t1) is a prefix of Prefix(t2) for t1 <= t2.
func TestPrefixMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		c := &Cascade{ID: 1}
		tm := 0.0
		for i := 0; i < 1+rng.Intn(15); i++ {
			tm += rng.Float64()
			c.Infections = append(c.Infections, Infection{Node: i, Time: tm})
		}
		t1 := rng.Float64() * tm
		t2 := t1 + rng.Float64()*tm
		p1, p2 := c.Prefix(t1), c.Prefix(t2)
		if p1.Size() > p2.Size() {
			return false
		}
		for i := range p1.Infections {
			if p1.Infections[i] != p2.Infections[i] {
				return false
			}
		}
		// Prefixes of valid cascades are valid unless empty.
		if p1.Size() > 0 && p1.Validate(100) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
