package cascade

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"viralcast/internal/xrand"
)

func valid() *Cascade {
	return &Cascade{ID: 1, Infections: []Infection{{0, 0}, {3, 1.5}, {2, 2.25}}}
}

func TestSizeDurationNodes(t *testing.T) {
	c := valid()
	if c.Size() != 3 {
		t.Fatalf("Size = %d", c.Size())
	}
	if c.Duration() != 2.25 {
		t.Fatalf("Duration = %v", c.Duration())
	}
	nodes := c.Nodes()
	if len(nodes) != 3 || nodes[0] != 0 || nodes[1] != 3 || nodes[2] != 2 {
		t.Fatalf("Nodes = %v", nodes)
	}
	single := &Cascade{Infections: []Infection{{0, 5}}}
	if single.Duration() != 0 {
		t.Fatal("singleton duration must be 0")
	}
}

func TestNodeSet(t *testing.T) {
	s := valid().NodeSet()
	if len(s) != 3 || !s[0] || !s[2] || !s[3] || s[1] {
		t.Fatalf("NodeSet = %v", s)
	}
}

func TestPrefix(t *testing.T) {
	c := valid()
	p := c.Prefix(1.5)
	if p.Size() != 2 || p.Infections[1].Node != 3 {
		t.Fatalf("Prefix = %+v", p.Infections)
	}
	// Prefix must not share storage.
	p.Infections[0].Node = 99
	if c.Infections[0].Node == 99 {
		t.Fatal("Prefix aliases parent storage")
	}
	if c.Prefix(-1).Size() != 0 {
		t.Fatal("Prefix before first infection must be empty")
	}
	if c.Prefix(100).Size() != 3 {
		t.Fatal("Prefix past end must include all")
	}
}

func TestValidate(t *testing.T) {
	if err := valid().Validate(4); err != nil {
		t.Fatalf("valid cascade rejected: %v", err)
	}
	cases := map[string]*Cascade{
		"empty":        {ID: 1},
		"dup node":     {Infections: []Infection{{0, 0}, {0, 1}}},
		"neg node":     {Infections: []Infection{{-1, 0}}},
		"out of range": {Infections: []Infection{{9, 0}}},
		"neg time":     {Infections: []Infection{{0, -1}}},
		"disorder":     {Infections: []Infection{{0, 2}, {1, 1}}},
	}
	for name, c := range cases {
		if err := c.Validate(4); err == nil {
			t.Errorf("%s: invalid cascade accepted", name)
		}
	}
	// n=0 disables the range check.
	big := &Cascade{Infections: []Infection{{1000, 0}}}
	if err := big.Validate(0); err != nil {
		t.Errorf("n=0 must disable range check: %v", err)
	}
}

func TestSortByTime(t *testing.T) {
	c := &Cascade{Infections: []Infection{{2, 3}, {1, 1}, {5, 1}, {0, 2}}}
	c.SortByTime()
	want := []Infection{{1, 1}, {5, 1}, {0, 2}, {2, 3}}
	for i, inf := range want {
		if c.Infections[i] != inf {
			t.Fatalf("SortByTime = %v, want %v", c.Infections, want)
		}
	}
}

func TestAggregates(t *testing.T) {
	cs := []*Cascade{valid(), {ID: 2, Infections: []Infection{{1, 0}}}}
	if err := ValidateAll(cs, 4); err != nil {
		t.Fatal(err)
	}
	if s := Sizes(cs); s[0] != 3 || s[1] != 1 {
		t.Fatalf("Sizes = %v", s)
	}
	if MeanSize(cs) != 2 {
		t.Fatalf("MeanSize = %v", MeanSize(cs))
	}
	if TotalInfections(cs) != 4 {
		t.Fatalf("TotalInfections = %v", TotalInfections(cs))
	}
	if MeanSize(nil) != 0 {
		t.Fatal("MeanSize(nil) != 0")
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	cs := []*Cascade{
		{ID: 7, Infections: []Infection{{0, 0}, {2, 0.5}, {1, 1.25}}},
		{ID: 3, Infections: []Infection{{4, 0}}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, cs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 7 || got[1].ID != 3 {
		t.Fatalf("roundtrip ids wrong: %+v", got)
	}
	for i := range cs {
		if len(got[i].Infections) != len(cs[i].Infections) {
			t.Fatalf("cascade %d length mismatch", i)
		}
		for j := range cs[i].Infections {
			if got[i].Infections[j] != cs[i].Infections[j] {
				t.Fatalf("cascade %d infection %d mismatch: %v vs %v",
					i, j, got[i].Infections[j], cs[i].Infections[j])
			}
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1,0,0\n1,2,1.5\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Size() != 2 {
		t.Fatalf("Read = %+v", got)
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"1,0\n",
		"x,0,0\n",
		"1,y,0\n",
		"1,0,z\n",
	}
	for _, in := range bad {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read accepted %q", in)
		}
	}
}

// Property: roundtrip through Write/Read preserves arbitrary valid cascades.
func TestRoundtripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(5)
		var cs []*Cascade
		for id := 0; id < n; id++ {
			c := &Cascade{ID: id}
			tm := 0.0
			sz := 1 + rng.Intn(10)
			for j := 0; j < sz; j++ {
				tm += rng.Float64()
				c.Infections = append(c.Infections, Infection{Node: id*100 + j, Time: tm})
			}
			cs = append(cs, c)
		}
		var buf bytes.Buffer
		if err := Write(&buf, cs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(cs) {
			return false
		}
		for i := range cs {
			if got[i].ID != cs[i].ID || got[i].Size() != cs[i].Size() {
				return false
			}
			for j := range cs[i].Infections {
				a, b := got[i].Infections[j], cs[i].Infections[j]
				if a.Node != b.Node {
					return false
				}
				diff := a.Time - b.Time
				if diff > 1e-9 || diff < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadOversizedLine(t *testing.T) {
	old := maxLineBytes
	maxLineBytes = 256
	defer func() { maxLineBytes = old }()
	// Two good lines, then one longer than the limit on line 3.
	in := "1,0,0\n1,1,0.5\n# " + strings.Repeat("x", 512) + "\n"
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	for _, want := range []string{"line 3", "256-byte limit"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	// Lines within the limit still read fine.
	cs, err := Read(strings.NewReader("1,0,0\n1,1,0.5\n"))
	if err != nil || len(cs) != 1 || cs[0].Size() != 2 {
		t.Fatalf("short lines: cs=%v err=%v", cs, err)
	}
}
