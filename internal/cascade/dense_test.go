package cascade

import (
	"context"
	"testing"

	"viralcast/internal/xrand"
)

func TestNewDenseSimulatorValidation(t *testing.T) {
	a, b := constMatrix(4, 2, 0.5), constMatrix(4, 2, 0.5)
	if _, err := NewDenseSimulator(a, b, 10); err != nil {
		t.Fatalf("valid dense simulator rejected: %v", err)
	}
	cases := []struct {
		name string
		fn   func() (*Simulator, error)
	}{
		{"nil A", func() (*Simulator, error) { return NewDenseSimulator(nil, b, 10) }},
		{"rows mismatch", func() (*Simulator, error) { return NewDenseSimulator(constMatrix(3, 2, 1), b, 10) }},
		{"topic mismatch", func() (*Simulator, error) { return NewDenseSimulator(constMatrix(4, 3, 1), b, 10) }},
		{"bad window", func() (*Simulator, error) { return NewDenseSimulator(a, b, 0) }},
	}
	for _, c := range cases {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	neg := constMatrix(4, 2, 1)
	neg.Set(0, 0, -1)
	if _, err := NewDenseSimulator(neg, b, 10); err == nil {
		t.Error("negative embedding accepted")
	}
}

func TestDenseRunReachesAllPositivePairs(t *testing.T) {
	// Uniform positive rates with an effectively infinite window: the
	// dense topology must infect every node from any seed.
	s, err := NewDenseSimulator(constMatrix(6, 2, 1), constMatrix(6, 2, 1), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Run(0, 3, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 6 {
		t.Fatalf("dense cascade size %d, want 6: %+v", c.Size(), c.Infections)
	}
	if err := c.Validate(6); err != nil {
		t.Fatal(err)
	}
}

func TestDenseZeroRateRowsNeverInfected(t *testing.T) {
	// Node 4's selectivity row is zero: no one can ever infect it.
	a := constMatrix(5, 2, 1)
	b := constMatrix(5, 2, 1)
	b.Set(4, 0, 0)
	b.Set(4, 1, 0)
	s, err := NewDenseSimulator(a, b, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		c, err := s.Run(trial, 0, xrand.New(uint64(trial)+1))
		if err != nil {
			t.Fatal(err)
		}
		for _, inf := range c.Infections {
			if inf.Node == 4 {
				t.Fatalf("zero-selectivity node infected at %v", inf.Time)
			}
		}
		if c.Size() != 4 {
			t.Fatalf("trial %d size %d, want 4", trial, c.Size())
		}
	}
}

func TestRunSeedsCampaign(t *testing.T) {
	s, err := NewDenseSimulator(constMatrix(8, 2, 1), constMatrix(8, 2, 1), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.RunSeeds(0, []int{2, 5, 2}, 0, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate seeds collapse; both distinct seeds start at time 0.
	at0 := map[int]bool{}
	for _, inf := range c.Infections {
		if inf.Time == 0 {
			at0[inf.Node] = true
		}
	}
	if len(at0) != 2 || !at0[2] || !at0[5] {
		t.Fatalf("time-0 infections = %v, want exactly {2, 5}", at0)
	}
	if err := c.Validate(8); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 8 {
		t.Fatalf("campaign with infinite window must fully infect, size=%d", c.Size())
	}

	if _, err := s.RunSeeds(0, nil, 0, xrand.New(1)); err == nil {
		t.Error("empty seed set accepted")
	}
	if _, err := s.RunSeeds(0, []int{8}, 0, xrand.New(1)); err == nil {
		t.Error("out-of-range seed accepted")
	}
}

func TestRunSeedsMaxSizeEarlyStop(t *testing.T) {
	s, err := NewDenseSimulator(constMatrix(50, 2, 1), constMatrix(50, 2, 1), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.RunSeeds(0, []int{0}, 5, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 5 {
		t.Fatalf("early-stopped cascade size %d, want 5", c.Size())
	}
	// The truncated prefix must match the unbounded run exactly: the
	// early stop changes where the simulation ends, not how it unfolds.
	full, err := s.RunSeeds(0, []int{0}, 0, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, inf := range c.Infections {
		if full.Infections[i] != inf {
			t.Fatalf("infection %d differs under early stop: %+v vs %+v", i, inf, full.Infections[i])
		}
	}
}

func TestRunManyCtxCancellation(t *testing.T) {
	s, err := NewDenseSimulator(constMatrix(20, 2, 0.5), constMatrix(20, 2, 0.5), 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunManyCtx(ctx, 0, 100, xrand.New(1)); err != context.Canceled {
		t.Fatalf("canceled RunManyCtx = %v, want context.Canceled", err)
	}
	// An open context must behave exactly like RunMany.
	cs, err := s.RunManyCtx(context.Background(), 0, 10, xrand.New(2))
	if err != nil || len(cs) != 10 {
		t.Fatalf("RunManyCtx = %d cascades, err %v", len(cs), err)
	}
}

func TestGraphModeUnchangedThroughRunSeeds(t *testing.T) {
	// The single-seed graph path must produce identical cascades through
	// the new RunSeeds plumbing (regression guard for the refactor).
	g := lineGraph(t, 10)
	s, _ := NewSimulator(g, constMatrix(10, 1, 1), constMatrix(10, 1, 1), 4)
	c1, err := s.Run(0, 0, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.RunSeeds(0, []int{0}, 0, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Infections) != len(c2.Infections) {
		t.Fatalf("sizes differ: %d vs %d", len(c1.Infections), len(c2.Infections))
	}
	for i := range c1.Infections {
		if c1.Infections[i] != c2.Infections[i] {
			t.Fatalf("infection %d differs", i)
		}
	}
}
