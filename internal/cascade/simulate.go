package cascade

import (
	"container/heap"
	"fmt"

	"viralcast/internal/graph"
	"viralcast/internal/vecmath"
	"viralcast/internal/xrand"
)

// Simulator runs the continuous-time stochastic propagation model of
// Kempe et al. adapted by the paper (§III): when node u becomes infected
// at time t_u it attempts to infect each susceptible out-neighbor v after
// an exponential delay with rate A[u]·B[v] (the minimum over K
// topic-specific exponential delays with rates A[u,k]·B[v,k]). A node
// keeps the earliest tentative infection it receives — the single-source
// property of the model. The spread is truncated at the observation
// window (paper §VI-A).
type Simulator struct {
	G      *graph.Graph
	A, B   *vecmath.Matrix // ground-truth influence and selectivity
	Window float64         // observation window; infections after it are discarded
}

// NewSimulator validates the inputs and returns a simulator.
func NewSimulator(g *graph.Graph, a, b *vecmath.Matrix, window float64) (*Simulator, error) {
	if g == nil || a == nil || b == nil {
		return nil, fmt.Errorf("cascade: nil simulator input")
	}
	if a.RowsN != g.N() || b.RowsN != g.N() {
		return nil, fmt.Errorf("cascade: embedding rows (%d, %d) != graph nodes %d", a.RowsN, b.RowsN, g.N())
	}
	if a.ColsN != b.ColsN {
		return nil, fmt.Errorf("cascade: A has %d topics but B has %d", a.ColsN, b.ColsN)
	}
	if window <= 0 {
		return nil, fmt.Errorf("cascade: observation window must be positive, got %v", window)
	}
	if !vecmath.AllNonneg(a.Data) || !vecmath.AllNonneg(b.Data) {
		return nil, fmt.Errorf("cascade: embeddings must be non-negative (they parameterize hazard rates)")
	}
	return &Simulator{G: g, A: a, B: b, Window: window}, nil
}

// event is a tentative infection in the simulation's priority queue.
type event struct {
	time float64
	node int
}

type eventHeap []event

func (h eventHeap) Len() int      { return len(h) }
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].node < h[j].node
}
func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run simulates a single cascade with the given id, starting from seed at
// time 0. The cascade always contains at least the seed.
func (s *Simulator) Run(id, seed int, rng *xrand.RNG) (*Cascade, error) {
	if seed < 0 || seed >= s.G.N() {
		return nil, fmt.Errorf("cascade: seed %d out of range [0,%d)", seed, s.G.N())
	}
	infected := make(map[int]float64, 16)
	h := &eventHeap{{time: 0, node: seed}}
	c := &Cascade{ID: id}
	for h.Len() > 0 {
		e := heap.Pop(h).(event)
		if e.time > s.Window {
			break // the observation window terminates the process instantly
		}
		if _, done := infected[e.node]; done {
			continue // a faster source already infected this node
		}
		infected[e.node] = e.time
		c.Infections = append(c.Infections, Infection{Node: e.node, Time: e.time})
		ts, _ := s.G.Neighbors(e.node)
		au := s.A.Row(e.node)
		for _, v := range ts {
			if _, done := infected[v]; done {
				continue
			}
			rate := vecmath.Dot(au, s.B.Row(v))
			if rate <= 0 {
				continue // zero hazard: u can never infect v
			}
			heap.Push(h, event{time: e.time + rng.Exp(rate), node: v})
		}
	}
	return c, nil
}

// RunMany simulates count cascades with uniformly random seeds, ids
// firstID..firstID+count-1 (paper §VI-A: "a random node is chosen as the
// initiator").
func (s *Simulator) RunMany(firstID, count int, rng *xrand.RNG) ([]*Cascade, error) {
	if count < 0 {
		return nil, fmt.Errorf("cascade: negative count %d", count)
	}
	out := make([]*Cascade, 0, count)
	for i := 0; i < count; i++ {
		c, err := s.Run(firstID+i, rng.Intn(s.G.N()), rng)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
