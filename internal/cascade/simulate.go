package cascade

import (
	"container/heap"
	"context"
	"fmt"

	"viralcast/internal/graph"
	"viralcast/internal/vecmath"
	"viralcast/internal/xrand"
)

// Simulator runs the continuous-time stochastic propagation model of
// Kempe et al. adapted by the paper (§III): when node u becomes infected
// at time t_u it attempts to infect each susceptible out-neighbor v after
// an exponential delay with rate A[u]·B[v] (the minimum over K
// topic-specific exponential delays with rates A[u,k]·B[v,k]). A node
// keeps the earliest tentative infection it receives — the single-source
// property of the model. The spread is truncated at the observation
// window (paper §VI-A).
//
// With a nil graph the simulator runs in dense mode: every other node is
// a candidate target of every infection, exactly the topology the A·Bᵀ
// hazard model itself defines (zero-rate pairs simply never fire). Dense
// mode is how the scenario engine simulates campaigns against a serving
// generation, which carries embeddings but no explicit graph.
type Simulator struct {
	G      *graph.Graph // nil = dense/complete topology over the embedding rows
	A, B   *vecmath.Matrix
	Window float64 // observation window; infections after it are discarded
}

// NewSimulator validates the inputs and returns a graph-backed simulator.
func NewSimulator(g *graph.Graph, a, b *vecmath.Matrix, window float64) (*Simulator, error) {
	if g == nil {
		return nil, fmt.Errorf("cascade: nil simulator input")
	}
	s, err := NewDenseSimulator(a, b, window)
	if err != nil {
		return nil, err
	}
	if a.RowsN != g.N() {
		return nil, fmt.Errorf("cascade: embedding rows (%d, %d) != graph nodes %d", a.RowsN, b.RowsN, g.N())
	}
	s.G = g
	return s, nil
}

// NewDenseSimulator validates the inputs and returns a simulator over the
// complete topology implied by the embeddings alone: the hazard of u
// infecting any v is A[u]·B[v], with no adjacency restriction.
func NewDenseSimulator(a, b *vecmath.Matrix, window float64) (*Simulator, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("cascade: nil simulator input")
	}
	if a.RowsN != b.RowsN {
		return nil, fmt.Errorf("cascade: A has %d rows but B has %d", a.RowsN, b.RowsN)
	}
	if a.ColsN != b.ColsN {
		return nil, fmt.Errorf("cascade: A has %d topics but B has %d", a.ColsN, b.ColsN)
	}
	if window <= 0 {
		return nil, fmt.Errorf("cascade: observation window must be positive, got %v", window)
	}
	if !vecmath.AllNonneg(a.Data) || !vecmath.AllNonneg(b.Data) {
		return nil, fmt.Errorf("cascade: embeddings must be non-negative (they parameterize hazard rates)")
	}
	return &Simulator{A: a, B: b, Window: window}, nil
}

// N returns the node-universe size of the simulation.
func (s *Simulator) N() int {
	if s.G != nil {
		return s.G.N()
	}
	return s.A.RowsN
}

// event is a tentative infection in the simulation's priority queue.
type event struct {
	time float64
	node int
}

type eventHeap []event

func (h eventHeap) Len() int      { return len(h) }
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].node < h[j].node
}
func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run simulates a single cascade with the given id, starting from seed at
// time 0. The cascade always contains at least the seed.
func (s *Simulator) Run(id, seed int, rng *xrand.RNG) (*Cascade, error) {
	return s.RunSeeds(id, []int{seed}, 0, rng)
}

// RunSeeds simulates one cascade seeded by the whole set at time 0 — a
// campaign: every seed starts infected simultaneously and their spreads
// compete for the same susceptible population (a node reached by two
// seeds' frontiers keeps the earliest infection, as always). Duplicate
// seeds are collapsed. maxSize > 0 stops the simulation as soon as that
// many nodes are infected — the early-stop hook for "time to size X"
// queries and for bounding trial cost; 0 means no cap. The infection
// order of the returned cascade is deterministic given the rng state.
func (s *Simulator) RunSeeds(id int, seeds []int, maxSize int, rng *xrand.RNG) (*Cascade, error) {
	n := s.N()
	if len(seeds) == 0 {
		return nil, fmt.Errorf("cascade: empty seed set")
	}
	for _, seed := range seeds {
		if seed < 0 || seed >= n {
			return nil, fmt.Errorf("cascade: seed %d out of range [0,%d)", seed, n)
		}
	}
	infected := make(map[int]float64, 16)
	h := &eventHeap{}
	for _, seed := range seeds {
		*h = append(*h, event{time: 0, node: seed})
	}
	heap.Init(h)
	c := &Cascade{ID: id}
	for h.Len() > 0 {
		e := heap.Pop(h).(event)
		if e.time > s.Window {
			break // the observation window terminates the process instantly
		}
		if _, done := infected[e.node]; done {
			continue // a faster source already infected this node
		}
		infected[e.node] = e.time
		c.Infections = append(c.Infections, Infection{Node: e.node, Time: e.time})
		if maxSize > 0 && len(infected) >= maxSize {
			break // early stop: the question was only ever "how fast to maxSize"
		}
		au := s.A.Row(e.node)
		if s.G != nil {
			ts, _ := s.G.Neighbors(e.node)
			for _, v := range ts {
				s.attempt(h, infected, au, e.time, v, rng)
			}
			continue
		}
		// Dense mode: every still-susceptible node is a candidate. The
		// rng draw happens only for positive rates, so the consumed
		// stream — and therefore the trajectory — is identical however
		// the candidate scan is reached.
		for v := 0; v < n; v++ {
			if v == e.node {
				continue
			}
			s.attempt(h, infected, au, e.time, v, rng)
		}
	}
	return c, nil
}

// attempt schedules u→v's tentative infection if v is susceptible and
// the pair's hazard is positive.
func (s *Simulator) attempt(h *eventHeap, infected map[int]float64, au []float64, t float64, v int, rng *xrand.RNG) {
	if _, done := infected[v]; done {
		return
	}
	rate := vecmath.Dot(au, s.B.Row(v))
	if rate <= 0 {
		return // zero hazard: u can never infect v
	}
	heap.Push(h, event{time: t + rng.Exp(rate), node: v})
}

// RunMany simulates count cascades with uniformly random seeds, ids
// firstID..firstID+count-1 (paper §VI-A: "a random node is chosen as the
// initiator").
func (s *Simulator) RunMany(firstID, count int, rng *xrand.RNG) ([]*Cascade, error) {
	return s.RunManyCtx(context.Background(), firstID, count, rng)
}

// RunManyCtx is RunMany with cancellation, checked between trials: a
// fired deadline or SIGINT stops the batch at the next trial boundary
// and discards the partial work (the caller asked a question it no
// longer wants half-answered). Within-trial state never leaks, so a
// canceled batch leaves no trace.
func (s *Simulator) RunManyCtx(ctx context.Context, firstID, count int, rng *xrand.RNG) ([]*Cascade, error) {
	if count < 0 {
		return nil, fmt.Errorf("cascade: negative count %d", count)
	}
	out := make([]*Cascade, 0, count)
	for i := 0; i < count; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := s.Run(firstID+i, rng.Intn(s.N()), rng)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
