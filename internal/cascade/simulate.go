package cascade

import (
	"context"
	"fmt"

	"viralcast/internal/graph"
	"viralcast/internal/vecmath"
	"viralcast/internal/xrand"
)

// Simulator runs the continuous-time stochastic propagation model of
// Kempe et al. adapted by the paper (§III): when node u becomes infected
// at time t_u it attempts to infect each susceptible out-neighbor v after
// an exponential delay with rate A[u]·B[v] (the minimum over K
// topic-specific exponential delays with rates A[u,k]·B[v,k]). A node
// keeps the earliest tentative infection it receives — the single-source
// property of the model. The spread is truncated at the observation
// window (paper §VI-A).
//
// With a nil graph the simulator runs in dense mode: every other node is
// a candidate target of every infection, exactly the topology the A·Bᵀ
// hazard model itself defines (zero-rate pairs simply never fire). Dense
// mode is how the scenario engine simulates campaigns against a serving
// generation, which carries embeddings but no explicit graph.
type Simulator struct {
	G      *graph.Graph // nil = dense/complete topology over the embedding rows
	A, B   *vecmath.Matrix
	Window float64 // observation window; infections after it are discarded
}

// NewSimulator validates the inputs and returns a graph-backed simulator.
func NewSimulator(g *graph.Graph, a, b *vecmath.Matrix, window float64) (*Simulator, error) {
	if g == nil {
		return nil, fmt.Errorf("cascade: nil simulator input")
	}
	s, err := NewDenseSimulator(a, b, window)
	if err != nil {
		return nil, err
	}
	if a.RowsN != g.N() {
		return nil, fmt.Errorf("cascade: embedding rows (%d, %d) != graph nodes %d", a.RowsN, b.RowsN, g.N())
	}
	s.G = g
	return s, nil
}

// NewDenseSimulator validates the inputs and returns a simulator over the
// complete topology implied by the embeddings alone: the hazard of u
// infecting any v is A[u]·B[v], with no adjacency restriction.
func NewDenseSimulator(a, b *vecmath.Matrix, window float64) (*Simulator, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("cascade: nil simulator input")
	}
	if a.RowsN != b.RowsN {
		return nil, fmt.Errorf("cascade: A has %d rows but B has %d", a.RowsN, b.RowsN)
	}
	if a.ColsN != b.ColsN {
		return nil, fmt.Errorf("cascade: A has %d topics but B has %d", a.ColsN, b.ColsN)
	}
	if window <= 0 {
		return nil, fmt.Errorf("cascade: observation window must be positive, got %v", window)
	}
	if !vecmath.AllNonneg(a.Data) || !vecmath.AllNonneg(b.Data) {
		return nil, fmt.Errorf("cascade: embeddings must be non-negative (they parameterize hazard rates)")
	}
	return &Simulator{A: a, B: b, Window: window}, nil
}

// N returns the node-universe size of the simulation.
func (s *Simulator) N() int {
	if s.G != nil {
		return s.G.N()
	}
	return s.A.RowsN
}

// TrialScratch holds the per-trial working state of one simulation: the
// tentative-event heap, the infection table, and the output infection
// slice. A zero TrialScratch is ready to use; reusing one across trials
// (each trial implicitly resets it) removes the per-trial allocations
// that dominate Monte Carlo batches. The scratch is not safe for
// concurrent use, and a cascade produced through it aliases its storage
// — valid only until the scratch's next trial.
type TrialScratch struct {
	h eventHeap
	// infectedAt[v] is v's infection time, meaningful only when
	// mark[v] == epoch. Bumping epoch resets the whole table in O(1);
	// the arrays are sized to the simulator's universe on first use.
	infectedAt []float64
	mark       []uint32
	epoch      uint32
	infected   int // count of marked nodes this trial
	infs       []Infection
}

// reset prepares the scratch for a fresh trial over n nodes.
func (ws *TrialScratch) reset(n int) {
	ws.h = ws.h[:0]
	ws.infs = ws.infs[:0]
	ws.infected = 0
	if len(ws.mark) < n {
		ws.mark = make([]uint32, n)
		ws.infectedAt = make([]float64, n)
		ws.epoch = 0
	}
	ws.epoch++
	if ws.epoch == 0 { // uint32 wrapped: stale marks could collide
		for i := range ws.mark {
			ws.mark[i] = 0
		}
		ws.epoch = 1
	}
}

func (ws *TrialScratch) isInfected(v int) bool { return ws.mark[v] == ws.epoch }

func (ws *TrialScratch) infect(v int, t float64) {
	ws.mark[v] = ws.epoch
	ws.infectedAt[v] = t
	ws.infected++
}

// event is a tentative infection in the simulation's priority queue.
type event struct {
	time float64
	node int
}

// eventHeap is a binary min-heap ordered by (time, node). The sift
// operations are implemented directly rather than through
// container/heap: the interface's `any` parameters box every event,
// and those boxes were the bulk of a Monte Carlo batch's allocations.
// Events with equal (time, node) keys are interchangeable — popping
// either first yields the same trajectory — so any heap with this
// ordering produces identical cascades.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].node < h[j].node
}

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	*h = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	e := s[n]
	s = s[:n]
	*h = s
	h.down(0)
	return e
}

// down restores the heap property below index i.
func (h *eventHeap) down(i int) {
	s := *h
	n := len(s)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && s.less(r, l) {
			j = r
		}
		if !s.less(j, i) {
			return
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
}

// init heapifies an arbitrarily-ordered slice.
func (h *eventHeap) init() {
	for i := len(*h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// Run simulates a single cascade with the given id, starting from seed at
// time 0. The cascade always contains at least the seed.
func (s *Simulator) Run(id, seed int, rng *xrand.RNG) (*Cascade, error) {
	return s.RunSeeds(id, []int{seed}, 0, rng)
}

// RunSeeds simulates one cascade seeded by the whole set at time 0 — a
// campaign: every seed starts infected simultaneously and their spreads
// compete for the same susceptible population (a node reached by two
// seeds' frontiers keeps the earliest infection, as always). Duplicate
// seeds are collapsed. maxSize > 0 stops the simulation as soon as that
// many nodes are infected — the early-stop hook for "time to size X"
// queries and for bounding trial cost; 0 means no cap. The infection
// order of the returned cascade is deterministic given the rng state.
func (s *Simulator) RunSeeds(id int, seeds []int, maxSize int, rng *xrand.RNG) (*Cascade, error) {
	c, err := s.RunSeedsScratch(new(TrialScratch), id, seeds, maxSize, rng)
	if err != nil {
		return nil, err
	}
	// The scratch is private to this call, so the aliasing view can be
	// handed out as an owned cascade; clamp capacity so appends by the
	// caller cannot write into what the scratch considered spare room.
	c.Infections = c.Infections[:len(c.Infections):len(c.Infections)]
	return &c, nil
}

// RunSeedsScratch is RunSeeds running on caller-owned working state:
// the heap, the infection table, and the output slice all live in ws
// and are reused across trials. The returned cascade aliases ws and is
// valid only until ws's next trial — callers that retain cascades must
// copy, callers that fold each trial into aggregates (the Monte Carlo
// engines) pay zero per-trial allocations. The trajectory is
// bit-identical to RunSeeds: the rng is consumed in exactly the same
// order, only the bookkeeping's storage differs.
func (s *Simulator) RunSeedsScratch(ws *TrialScratch, id int, seeds []int, maxSize int, rng *xrand.RNG) (Cascade, error) {
	n := s.N()
	if len(seeds) == 0 {
		return Cascade{}, fmt.Errorf("cascade: empty seed set")
	}
	for _, seed := range seeds {
		if seed < 0 || seed >= n {
			return Cascade{}, fmt.Errorf("cascade: seed %d out of range [0,%d)", seed, n)
		}
	}
	ws.reset(n)
	h := &ws.h
	for _, seed := range seeds {
		*h = append(*h, event{time: 0, node: seed})
	}
	h.init()
	for len(*h) > 0 {
		e := h.pop()
		if e.time > s.Window {
			break // the observation window terminates the process instantly
		}
		if ws.isInfected(e.node) {
			continue // a faster source already infected this node
		}
		ws.infect(e.node, e.time)
		ws.infs = append(ws.infs, Infection{Node: e.node, Time: e.time})
		if maxSize > 0 && ws.infected >= maxSize {
			break // early stop: the question was only ever "how fast to maxSize"
		}
		au := s.A.Row(e.node)
		if s.G != nil {
			ts, _ := s.G.Neighbors(e.node)
			for _, v := range ts {
				s.attempt(ws, au, e.time, v, rng)
			}
			continue
		}
		// Dense mode: every still-susceptible node is a candidate. The
		// rng draw happens only for positive rates, so the consumed
		// stream — and therefore the trajectory — is identical however
		// the candidate scan is reached.
		for v := 0; v < n; v++ {
			if v == e.node {
				continue
			}
			s.attempt(ws, au, e.time, v, rng)
		}
	}
	return Cascade{ID: id, Infections: ws.infs}, nil
}

// attempt schedules u→v's tentative infection if v is susceptible and
// the pair's hazard is positive.
func (s *Simulator) attempt(ws *TrialScratch, au []float64, t float64, v int, rng *xrand.RNG) {
	if ws.isInfected(v) {
		return
	}
	rate := vecmath.Dot(au, s.B.Row(v))
	if rate <= 0 {
		return // zero hazard: u can never infect v
	}
	ws.h.push(event{time: t + rng.Exp(rate), node: v})
}

// RunMany simulates count cascades with uniformly random seeds, ids
// firstID..firstID+count-1 (paper §VI-A: "a random node is chosen as the
// initiator").
func (s *Simulator) RunMany(firstID, count int, rng *xrand.RNG) ([]*Cascade, error) {
	return s.RunManyCtx(context.Background(), firstID, count, rng)
}

// RunManyCtx is RunMany with cancellation, checked between trials: a
// fired deadline or SIGINT stops the batch at the next trial boundary
// and discards the partial work (the caller asked a question it no
// longer wants half-answered). Within-trial state never leaks, so a
// canceled batch leaves no trace.
func (s *Simulator) RunManyCtx(ctx context.Context, firstID, count int, rng *xrand.RNG) ([]*Cascade, error) {
	if count < 0 {
		return nil, fmt.Errorf("cascade: negative count %d", count)
	}
	out := make([]*Cascade, 0, count)
	for i := 0; i < count; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := s.Run(firstID+i, rng.Intn(s.N()), rng)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
