// Package xrand provides a deterministic, splittable pseudo-random number
// generator for the simulations and the stochastic inference algorithm.
//
// Every stochastic component in this repository takes an explicit *RNG so
// experiments are reproducible bit-for-bit from a seed, and so parallel
// workers can each own an independent stream (via Split) without locking.
// The core generator is xoshiro256** seeded through splitmix64, which is
// the recommended seeding procedure for the xoshiro family.
package xrand

import "math"

// RNG is a xoshiro256** generator. It is NOT safe for concurrent use; give
// each goroutine its own stream via Split.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the state and returns the next output; used for
// seeding and for Split.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds give
// independent-looking streams; the zero seed is valid.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start at the all-zero state; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new independent generator from r, advancing r. Use it to
// hand each parallel worker its own stream.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Derive maps (seed, ids...) to a substream seed through a splitmix64
// chain, so callers can address an unbounded family of independent
// streams by coordinate — New(Derive(base, i, j)) is the same generator
// no matter which worker asks, in which order, or how many siblings
// exist. This is what makes parallel Monte Carlo merges
// order-independent: stream identity comes from the coordinates, not
// from how many times a shared generator was advanced before the split.
func Derive(seed uint64, ids ...uint64) uint64 {
	state := seed
	out := splitmix64(&state)
	for _, id := range ids {
		// XOR each coordinate into the fully mixed previous output, not
		// the raw counter state: small structured ids (set 0 trial 1 vs
		// set 1 trial 0) must land on unrelated streams, which takes a
		// full avalanche between folds.
		state = out ^ id
		out = splitmix64(&state)
	}
	return out
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Exp returns an exponentially distributed sample with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp with rate <= 0")
	}
	// Use 1-U to avoid log(0).
	return -math.Log(1-r.Float64()) / rate
}

// Norm returns a normally distributed sample with the given mean and
// standard deviation, via the polar Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// Pareto returns a sample from a Pareto (power-law) distribution with the
// given minimum xmin > 0 and exponent alpha > 1: P(X > x) = (xmin/x)^alpha.
func (r *RNG) Pareto(xmin, alpha float64) float64 {
	if xmin <= 0 || alpha <= 0 {
		panic("xrand: Pareto requires xmin > 0 and alpha > 0")
	}
	return xmin / math.Pow(1-r.Float64(), 1/alpha)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(k+1)^s using inverse-CDF over a precomputed table. Build one with
// NewZipf and reuse it; construction is O(n).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n categories with exponent s >= 0.
// s = 0 degenerates to the uniform distribution.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of categories.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one category index from the distribution.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
