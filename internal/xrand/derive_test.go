package xrand

import "testing"

func TestDeriveIsCoordinateAddressed(t *testing.T) {
	// Same coordinates, same stream — regardless of call order.
	if Derive(1, 3, 7) != Derive(1, 3, 7) {
		t.Fatal("Derive is not deterministic")
	}
	// Distinct coordinates, base seeds, or arities must not collide.
	seen := map[uint64][2]uint64{}
	for base := uint64(0); base < 4; base++ {
		for i := uint64(0); i < 64; i++ {
			for j := uint64(0); j < 64; j++ {
				s := Derive(base, i, j)
				if prev, dup := seen[s]; dup {
					t.Fatalf("Derive collision: (%d,%d,%d) and base+%v", base, i, j, prev)
				}
				seen[s] = [2]uint64{i, j}
			}
		}
	}
	if Derive(1, 0) == Derive(1) || Derive(1, 0, 1) == Derive(1, 1, 0) {
		t.Fatal("Derive must separate arity and coordinate order")
	}
	// Derived streams should look independent: identical prefixes from
	// adjacent coordinates would correlate every Monte Carlo trial.
	a, b := New(Derive(9, 0)), New(Derive(9, 1))
	same := 0
	for k := 0; k < 16; k++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent derived streams share %d of 16 outputs", same)
	}
}
