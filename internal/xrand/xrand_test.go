package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded RNG has low entropy: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split()
	s2 := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/1000 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(2)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		v := r.Intn(buckets)
		if v < 0 || v >= buckets {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMeanAndPositivity(t *testing.T) {
	r := New(3)
	const n = 200000
	rate := 2.5
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean %v, want %v", mean, 1/rate)
	}
}

// Kolmogorov-Smirnov-style check that Exp(1) matches the exponential CDF.
func TestExpDistributionKS(t *testing.T) {
	r := New(4)
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Exp(1)
	}
	// Sort via simple insertion into histogram-free approach: use sort-free
	// empirical CDF at fixed probe points.
	probes := []float64{0.1, 0.25, 0.5, 1, 1.5, 2, 3}
	for _, p := range probes {
		var below int
		for _, x := range xs {
			if x <= p {
				below++
			}
		}
		emp := float64(below) / n
		theo := 1 - math.Exp(-p)
		if math.Abs(emp-theo) > 0.015 {
			t.Errorf("Exp CDF at %v: empirical %v, theoretical %v", p, emp, theo)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	mean, sd := 3.0, 2.0
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm(mean, sd)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m-mean) > 0.02 {
		t.Errorf("Norm mean %v, want %v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.02 {
		t.Errorf("Norm sd %v, want %v", math.Sqrt(variance), sd)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(6)
	const n = 100000
	xmin, alpha := 1.0, 2.0
	var belowXmin int
	var tail int // P(X > 2) should be (1/2)^2 = 0.25
	for i := 0; i < n; i++ {
		v := r.Pareto(xmin, alpha)
		if v < xmin {
			belowXmin++
		}
		if v > 2 {
			tail++
		}
	}
	if belowXmin > 0 {
		t.Errorf("Pareto produced %d samples below xmin", belowXmin)
	}
	frac := float64(tail) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Pareto tail P(X>2) = %v, want 0.25", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformity(t *testing.T) {
	// Over many shuffles of [0,1,2], each of the 6 permutations should
	// appear roughly 1/6 of the time.
	r := New(9)
	counts := map[[3]int]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("expected 6 permutations, got %d", len(counts))
	}
	for p, c := range counts {
		if math.Abs(float64(c)-n/6.0) > 5*math.Sqrt(n/6.0) {
			t.Errorf("permutation %v count %d deviates from %v", p, c, n/6.0)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(10)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate %v", frac)
	}
}

func TestZipfDistribution(t *testing.T) {
	z := NewZipf(5, 1.0)
	if z.N() != 5 {
		t.Fatalf("Zipf N = %d", z.N())
	}
	r := New(11)
	const n = 200000
	counts := make([]int, 5)
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// P(k) proportional to 1/(k+1); harmonic sum H5 = 137/60.
	h5 := 1.0 + 0.5 + 1.0/3 + 0.25 + 0.2
	for k, c := range counts {
		want := (1 / float64(k+1)) / h5
		got := float64(c) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Zipf P(%d) = %v, want %v", k, got, want)
		}
	}
	// Monotone non-increasing counts.
	for k := 1; k < 5; k++ {
		if counts[k] > counts[k-1] {
			t.Errorf("Zipf counts not monotone: %v", counts)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(4, 0)
	r := New(12)
	counts := make([]int, 4)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-n/4.0) > 5*math.Sqrt(n/4.0) {
			t.Errorf("Zipf s=0 bucket %d count %d not uniform", k, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}

func TestExpParetoPanics(t *testing.T) {
	r := New(13)
	for name, fn := range map[string]func(){
		"Exp":    func() { r.Exp(0) },
		"Pareto": func() { r.Pareto(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on invalid args", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exp(1.5)
	}
	_ = sink
}
