package svm

import (
	"math"
	"testing"
	"testing/quick"

	"viralcast/internal/xrand"
)

// Property: training on arbitrary bounded data always produces finite
// weights and predictions in {-1, +1}.
func TestTrainRobustnessProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 10 + rng.Intn(40)
		dim := 1 + rng.Intn(4)
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			row := make([]float64, dim)
			for j := range row {
				row[j] = rng.Norm(0, 100) // wild scales on purpose
			}
			x[i] = row
			if rng.Bernoulli(0.5) {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		// Ensure both classes present so training is well-posed.
		y[0], y[1] = 1, -1
		m, err := Train(x, y, Options{Seed: seed, Epochs: 10})
		if err != nil {
			return false
		}
		for _, w := range m.W {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return false
			}
		}
		for _, row := range x {
			p := m.Predict(row)
			if p != 1 && p != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: standardization is invertible in effect — applying the
// fitted standardizer to the training data yields mean ~0 per feature.
func TestStandardizerCentersProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(30)
		dim := 1 + rng.Intn(4)
		x := make([][]float64, n)
		for i := range x {
			row := make([]float64, dim)
			for j := range row {
				row[j] = rng.Norm(float64(j)*10, 5)
			}
			x[i] = row
		}
		std, err := FitStandardizer(x)
		if err != nil {
			return false
		}
		out := std.Apply(x)
		for j := 0; j < dim; j++ {
			var mean float64
			for i := range out {
				mean += out[i][j]
			}
			mean /= float64(n)
			if math.Abs(mean) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: AutoBalance never flips the sign semantics — on separable
// data the balanced model still classifies both classes correctly.
func TestAutoBalanceSeparableProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		var x [][]float64
		var y []int
		for i := 0; i < 60; i++ {
			if i%6 == 0 { // 1:5 imbalance
				x = append(x, []float64{3 + rng.Norm(0, 0.2)})
				y = append(y, 1)
			} else {
				x = append(x, []float64{-3 + rng.Norm(0, 0.2)})
				y = append(y, -1)
			}
		}
		m, err := Train(x, y, Options{Seed: seed, Epochs: 40, AutoBalance: true})
		if err != nil {
			return false
		}
		correct := 0
		for i := range x {
			if m.Predict(x[i]) == y[i] {
				correct++
			}
		}
		return float64(correct)/float64(len(x)) > 0.9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
