// Package svm implements the linear support-vector classifier used for
// cascade-virality prediction (paper §V uses an SVM with a linear kernel,
// stressing that a simple classifier suffices when the features are
// informative). Training is primal stochastic sub-gradient descent on the
// hinge loss with L2 regularization (Pegasos, Shalev-Shwartz et al.),
// which converges quickly on the paper's 3-dimensional feature vectors.
package svm

import (
	"fmt"
	"math"

	"viralcast/internal/vecmath"
	"viralcast/internal/xrand"
)

// Options configures training.
type Options struct {
	// Lambda is the L2 regularization strength (default 1e-3).
	Lambda float64
	// Epochs is the number of passes over the training set (default 50).
	Epochs int
	// Seed drives the stochastic sample order.
	Seed uint64
	// PosWeight scales the hinge loss of positive-class samples — the
	// standard cost-sensitive SVM for imbalanced tasks such as the
	// paper's top-20% virality threshold. 0 means 1 (unweighted);
	// AutoBalance overrides it.
	PosWeight float64
	// AutoBalance sets PosWeight to #negatives/#positives, equalizing the
	// total loss mass of the two classes.
	AutoBalance bool
}

func (o Options) withDefaults() Options {
	if o.Lambda <= 0 {
		o.Lambda = 1e-3
	}
	if o.Epochs <= 0 {
		o.Epochs = 50
	}
	if o.PosWeight <= 0 {
		o.PosWeight = 1
	}
	return o
}

// Model is a trained linear classifier: prediction is sign(W·x + Bias).
type Model struct {
	W    []float64
	Bias float64
}

// Train fits a linear SVM on features x (rows) and labels y (+1 or -1).
func Train(x [][]float64, y []int, opt Options) (*Model, error) {
	opt = opt.withDefaults()
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("svm: %d samples but %d labels", len(x), len(y))
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, fmt.Errorf("svm: zero-dimensional features")
	}
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("svm: sample %d has %d features, want %d", i, len(row), dim)
		}
		if y[i] != 1 && y[i] != -1 {
			return nil, fmt.Errorf("svm: label %d is %d, want +1 or -1", i, y[i])
		}
	}
	// The bias is trained as a constant-1 feature appended to every
	// sample (lightly regularized with the rest of the weights), which
	// keeps the Pegasos step sizes stable. The returned model averages
	// the iterates of the second half of training — standard Pegasos
	// suffix averaging, which markedly reduces the variance of the final
	// hyperplane.
	aug := make([][]float64, len(x))
	for i, row := range x {
		aug[i] = append(append(make([]float64, 0, dim+1), row...), 1)
	}
	if opt.AutoBalance {
		pos, neg := 0, 0
		for _, label := range y {
			if label == 1 {
				pos++
			} else {
				neg++
			}
		}
		if pos > 0 && neg > 0 {
			opt.PosWeight = float64(neg) / float64(pos)
		}
	}
	w := make([]float64, dim+1)
	avg := make([]float64, dim+1)
	avgCount := 0
	rng := xrand.New(opt.Seed)
	t := 0
	halfway := opt.Epochs / 2
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		order := rng.Perm(len(aug))
		for _, i := range order {
			t++
			eta := 1 / (opt.Lambda * float64(t))
			margin := float64(y[i]) * vecmath.Dot(w, aug[i])
			// Regularization shrink applies on every step.
			vecmath.Scale(1-eta*opt.Lambda, w)
			if margin < 1 {
				weight := 1.0
				if y[i] == 1 {
					weight = opt.PosWeight
				}
				vecmath.Axpy(eta*weight*float64(y[i]), aug[i], w)
			}
		}
		if epoch >= halfway {
			vecmath.Add(w, avg)
			avgCount++
		}
	}
	if avgCount > 0 {
		vecmath.Scale(1/float64(avgCount), avg)
	} else {
		copy(avg, w)
	}
	if !vecmath.AllFinite(avg) {
		return nil, fmt.Errorf("svm: training diverged (non-finite weights); standardize features or lower Lambda")
	}
	return &Model{W: avg[:dim], Bias: avg[dim]}, nil
}

// Decision returns the signed distance proxy W·x + Bias.
func (m *Model) Decision(x []float64) float64 {
	return vecmath.Dot(m.W, x) + m.Bias
}

// DecisionBlock computes Decision for every row of a row-major batch
// block into dst: dst[i] = W · x[i*stride : i*stride+len(W)] + Bias.
// The inner products run through the blocked vecmath.Gemv kernel, whose
// per-row accumulation order matches Dot exactly, so each margin is
// bit-identical to calling Decision on that row.
func (m *Model) DecisionBlock(dst, x []float64, stride int) {
	vecmath.Gemv(dst, x, stride, m.W)
	for i := range dst {
		dst[i] += m.Bias
	}
}

// Predict returns +1 or -1.
func (m *Model) Predict(x []float64) int {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// PredictAll classifies every row.
func (m *Model) PredictAll(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// TrainBestF1 trains cost-sensitive SVMs over a grid of positive-class
// weights and returns the one with the best F1 on an internal
// validation split (stratified 75/25). It exists because the right
// imbalance compensation for the virality task depends on how separable
// the classes are: full #neg/#pos balancing maximizes recall at a steep
// precision cost, while no weighting collapses recall. weights lists the
// candidate PosWeight values; 0 entries mean "auto" (#neg/#pos).
func TrainBestF1(x [][]float64, y []int, opt Options, weights []float64, rng *xrand.RNG) (*Model, error) {
	if len(weights) == 0 {
		weights = []float64{1, 2, 4, 0}
	}
	// Stratified split.
	var pos, neg []int
	for i, label := range y {
		if label == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) < 4 || len(neg) < 4 {
		// Too small to validate: fall back to auto-balanced training.
		opt.AutoBalance = true
		return Train(x, y, opt)
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	valSet := map[int]bool{}
	for _, i := range pos[:len(pos)/4] {
		valSet[i] = true
	}
	for _, i := range neg[:len(neg)/4] {
		valSet[i] = true
	}
	var trX, vaX [][]float64
	var trY, vaY []int
	for i := range x {
		if valSet[i] {
			vaX = append(vaX, x[i])
			vaY = append(vaY, y[i])
		} else {
			trX = append(trX, x[i])
			trY = append(trY, y[i])
		}
	}
	autoW := float64(len(neg)) / float64(len(pos))
	bestF1 := -1.0
	bestW := 1.0
	for _, w := range weights {
		cand := opt
		cand.AutoBalance = false
		cand.PosWeight = w
		if w == 0 {
			cand.PosWeight = autoW
		}
		m, err := Train(trX, trY, cand)
		if err != nil {
			continue
		}
		var tp, fp, fn int
		for i, row := range vaX {
			p := m.Predict(row)
			switch {
			case vaY[i] == 1 && p == 1:
				tp++
			case vaY[i] == -1 && p == 1:
				fp++
			case vaY[i] == 1 && p == -1:
				fn++
			}
		}
		f1 := 0.0
		if 2*tp+fp+fn > 0 {
			f1 = 2 * float64(tp) / float64(2*tp+fp+fn)
		}
		if f1 > bestF1 {
			bestF1, bestW = f1, cand.PosWeight
		}
	}
	final := opt
	final.AutoBalance = false
	final.PosWeight = bestW
	return Train(x, y, final)
}

// Standardizer shifts and scales features to zero mean and unit variance,
// fitted on training data and applied to both splits. SVM training on raw
// heavy-tailed cascade features is ill-conditioned without it.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer estimates per-feature mean and standard deviation.
func FitStandardizer(x [][]float64) (*Standardizer, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("svm: cannot standardize empty data")
	}
	dim := len(x[0])
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for _, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("svm: ragged feature rows")
		}
		vecmath.Add(row, mean)
	}
	vecmath.Scale(1/float64(len(x)), mean)
	for _, row := range x {
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(x)))
		if std[j] < 1e-12 {
			std[j] = 1 // constant feature: leave centered, unscaled
		}
	}
	return &Standardizer{Mean: mean, Std: std}, nil
}

// ApplyRow appends the standardized form of one feature row to dst and
// returns it — the allocation-free single-sample path serving
// predictions use (Apply allocates a full copy, the right shape for
// training batches).
func (s *Standardizer) ApplyRow(dst, row []float64) []float64 {
	for j, v := range row {
		dst = append(dst, (v-s.Mean[j])/s.Std[j])
	}
	return dst
}

// ApplyBlock standardizes a row-major batch block in place: every row
// x[i*stride : i*stride+dim] becomes its standardized form, where dim =
// len(s.Mean) and stride >= dim (padding columns are untouched). Each
// element gets exactly the (v-Mean[j])/Std[j] ApplyRow computes — a real
// division, not a cached reciprocal, because reciprocal-multiply rounds
// differently and the batched predict path promises bit-identical
// margins to the single-request path.
func (s *Standardizer) ApplyBlock(x []float64, rows, stride int) {
	dim := len(s.Mean)
	if dim > stride {
		panic(fmt.Sprintf("svm: ApplyBlock %d features into stride %d", dim, stride))
	}
	if len(x) < rows*stride {
		panic(fmt.Sprintf("svm: ApplyBlock block %d shorter than %d rows x stride %d", len(x), rows, stride))
	}
	for i := 0; i < rows; i++ {
		row := x[i*stride : i*stride+dim]
		for j, v := range row {
			row[j] = (v - s.Mean[j]) / s.Std[j]
		}
	}
}

// Apply returns the standardized copy of x.
func (s *Standardizer) Apply(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = (v - s.Mean[j]) / s.Std[j]
		}
		out[i] = r
	}
	return out
}
