package svm

import (
	"math"
	"testing"

	"viralcast/internal/xrand"
)

// separable2D makes a linearly separable 2-D dataset.
func separable2D(n int, seed uint64) ([][]float64, []int) {
	rng := xrand.New(seed)
	var x [][]float64
	var y []int
	for i := 0; i < n; i++ {
		// Positive class around (2, 2), negative around (-2, -2).
		label := 1
		cx, cy := 2.0, 2.0
		if i%2 == 0 {
			label = -1
			cx, cy = -2, -2
		}
		x = append(x, []float64{cx + rng.Norm(0, 0.5), cy + rng.Norm(0, 0.5)})
		y = append(y, label)
	}
	return x, y
}

func TestTrainSeparable(t *testing.T) {
	x, y := separable2D(200, 1)
	m, err := Train(x, y, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if m.Predict(x[i]) == y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(x))
	if acc < 0.97 {
		t.Fatalf("training accuracy %v on separable data", acc)
	}
}

func TestTrainGeneralizes(t *testing.T) {
	trX, trY := separable2D(200, 3)
	teX, teY := separable2D(100, 4)
	m, err := Train(trX, trY, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range teX {
		if m.Predict(teX[i]) == teY[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(teX)); acc < 0.95 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{0}, Options{}); err == nil {
		t.Error("bad label accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []int{1, -1}, Options{}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := Train([][]float64{{}}, []int{1}, Options{}); err == nil {
		t.Error("zero-dim features accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{1, -1}, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDecisionSign(t *testing.T) {
	m := &Model{W: []float64{1, -1}, Bias: 0.5}
	if got := m.Decision([]float64{2, 1}); got != 1.5 {
		t.Fatalf("Decision = %v", got)
	}
	if m.Predict([]float64{2, 1}) != 1 {
		t.Error("Predict should be +1")
	}
	if m.Predict([]float64{-2, 1}) != -1 {
		t.Error("Predict should be -1")
	}
}

func TestPredictAll(t *testing.T) {
	m := &Model{W: []float64{1}, Bias: 0}
	got := m.PredictAll([][]float64{{1}, {-1}, {0}})
	want := []int{1, -1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PredictAll = %v", got)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	x, y := separable2D(100, 6)
	m1, _ := Train(x, y, Options{Seed: 7})
	m2, _ := Train(x, y, Options{Seed: 7})
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatal("same seed, different weights")
		}
	}
	if m1.Bias != m2.Bias {
		t.Fatal("same seed, different bias")
	}
}

func TestImbalancedStillFindsPositives(t *testing.T) {
	// 10% positive class, still separable: the classifier must not
	// collapse to always-negative.
	rng := xrand.New(8)
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		if i%10 == 0 {
			x = append(x, []float64{3 + rng.Norm(0, 0.3)})
			y = append(y, 1)
		} else {
			x = append(x, []float64{-1 + rng.Norm(0, 0.3)})
			y = append(y, -1)
		}
	}
	m, err := Train(x, y, Options{Seed: 9, Epochs: 100})
	if err != nil {
		t.Fatal(err)
	}
	tp := 0
	for i := range x {
		if y[i] == 1 && m.Predict(x[i]) == 1 {
			tp++
		}
	}
	if tp < 25 {
		t.Fatalf("found only %d/30 positives in imbalanced separable data", tp)
	}
}

func TestStandardizer(t *testing.T) {
	x := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s, err := FitStandardizer(x)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean[0] != 3 || s.Mean[1] != 10 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	// Column 1 is constant: std forced to 1 to avoid division by zero.
	if s.Std[1] != 1 {
		t.Fatalf("constant-column std = %v, want 1", s.Std[1])
	}
	out := s.Apply(x)
	// Standardized column 0 must have mean 0, std 1.
	var mean, varsum float64
	for _, row := range out {
		mean += row[0]
	}
	mean /= 3
	for _, row := range out {
		varsum += (row[0] - mean) * (row[0] - mean)
	}
	sd := math.Sqrt(varsum / 3)
	if math.Abs(mean) > 1e-12 || math.Abs(sd-1) > 1e-12 {
		t.Fatalf("standardized mean %v sd %v", mean, sd)
	}
	// Apply must not mutate input.
	if x[0][0] != 1 {
		t.Fatal("Apply mutated input")
	}
}

func TestStandardizerErrors(t *testing.T) {
	if _, err := FitStandardizer(nil); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := FitStandardizer([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows accepted")
	}
}
