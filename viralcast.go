// Package viralcast reproduces "Predicting Viral News Events in Online
// Media" (Lu & Szymanski, ParSocial @ IPDPSW 2017): topic-specific
// influence/selectivity node embeddings inferred from information
// cascades with a community-parallel hierarchical gradient-ascent
// algorithm, and early-stage prediction of viral cascades from the
// embeddings of their first adopters.
//
// This file is the public façade. The minimal workflow:
//
//	cs, _ := cascade.Read(file)                    // or simulate your own
//	sys, _ := viralcast.Train(cs, nNodes, viralcast.TrainConfig{Topics: 4})
//	pred, _ := sys.TrainPredictor(cs, earlyCutoff, sizeThreshold)
//	viral, margin, _ := pred.PredictViral(newCascade)
//
// Subsystems (simulator, SBM generator, SLPA communities, Ward
// clustering, metrics, the synthetic GDELT corpus, figure harnesses)
// live in internal packages and are exercised by the executables under
// cmd/ and the programs under examples/.
package viralcast

import (
	"context"
	"fmt"
	"io"

	"viralcast/internal/cascade"
	"viralcast/internal/core"
	"viralcast/internal/eval"
	"viralcast/internal/experiments"
	"viralcast/internal/gdelt"
)

// Cascade is a time-ordered sequence of node infections — the unit of
// observation throughout the library.
type Cascade = cascade.Cascade

// Infection is one (node, time) report inside a cascade.
type Infection = cascade.Infection

// TrainConfig configures Train; the zero value uses library defaults.
type TrainConfig = core.TrainConfig

// System is a fitted model: influence and selectivity embeddings plus
// the detected community structure.
type System = core.System

// Predictor is a trained early-stage virality classifier.
type Predictor = core.Predictor

// Influencer is a node ranked by total inferred influence.
type Influencer = core.Influencer

// Confusion is a binary confusion matrix with Precision/Recall/F1/
// Accuracy methods.
type Confusion = eval.Confusion

// NewsConfig parameterizes the synthetic news-event corpus generator —
// the stand-in for the GDELT dataset of the original study.
type NewsConfig = gdelt.Config

// NewsCorpus is a generated news-event dataset: sites with regions and
// power-law popularity, plus one reporting cascade per event.
type NewsCorpus = gdelt.Dataset

// Train fits the embeddings from observed cascades over n nodes using
// the paper's full pipeline: co-occurrence graph, SLPA communities, and
// hierarchical community-parallel projected gradient ascent.
func Train(cs []*Cascade, n int, cfg TrainConfig) (*System, error) {
	return core.Train(cs, n, cfg)
}

// TrainCtx is Train with cancellation and fault tolerance: canceling ctx
// stops the fit at the next consistency boundary (writing a final
// snapshot when cfg.CheckpointPath is set), and cfg.Resume continues an
// interrupted run from its checkpoint file.
func TrainCtx(ctx context.Context, cs []*Cascade, n int, cfg TrainConfig) (*System, error) {
	return core.TrainCtx(ctx, cs, n, cfg)
}

// LoadSystem rebuilds a fitted System from embeddings previously saved
// with System.SaveEmbeddings.
func LoadSystem(r io.Reader, cfg TrainConfig) (*System, error) {
	return core.LoadSystem(r, cfg)
}

// SimulateSBM generates a demo workload: a stochastic block-model
// network with a planted influence/selectivity model, and `count`
// cascades simulated from it under the continuous-time propagation
// model. Returned cascades are over node ids [0, n).
func SimulateSBM(n, count int, window float64, seed uint64) ([]*Cascade, error) {
	if count < 2 {
		return nil, fmt.Errorf("viralcast: need at least 2 cascades, got %d", count)
	}
	e := experiments.DefaultSBM()
	e.N = n
	e.Cascades = count + 1
	e.Train = count
	e.Window = window
	e.Seed = seed
	w, err := experiments.BuildSBMWorkload(e)
	if err != nil {
		return nil, err
	}
	return w.Train, nil
}

// DefaultNewsConfig returns the paper-scale synthetic GDELT
// configuration (6,000 sites, four regional pools, 72-hour windows).
func DefaultNewsConfig() NewsConfig { return gdelt.DefaultConfig() }

// GenerateNews builds a synthetic news-event corpus.
func GenerateNews(cfg NewsConfig) (*NewsCorpus, error) { return gdelt.Generate(cfg) }

// TopSizeThreshold returns the cascade-size threshold that marks the top
// `frac` fraction of the given cascades as viral.
func TopSizeThreshold(cs []*Cascade, frac float64) int {
	return eval.TopFractionThreshold(cascade.Sizes(cs), frac)
}

// WriteCascades encodes cascades in the library's text format
// (cascadeID,node,time per line); ReadCascades decodes it.
func WriteCascades(w io.Writer, cs []*Cascade) error { return cascade.Write(w, cs) }

// ReadCascades decodes the format produced by WriteCascades.
func ReadCascades(r io.Reader) ([]*Cascade, error) { return cascade.Read(r) }
